//! Candidate generation by blocking.
//!
//! The Magellan benchmark's record pairs are the *output* of a blocking
//! stage: comparing every record of table A against every record of table B
//! is quadratic, so real EM systems first select candidate pairs that share
//! cheap surface evidence. This module implements the standard **token
//! (overlap) blocker** — a pair becomes a candidate when the chosen
//! attributes share at least `min_overlap` tokens — plus recall/reduction
//! metrics, so the library covers the full raw-tables → candidate-set →
//! matcher workflow (see `examples/custom_csv.rs` and the blocking
//! integration tests).

use crate::record::Entity;
use crate::schema::Schema;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt::Write as _;
use text::tokenize::words;

/// Configuration of the token blocker.
#[derive(Debug, Clone)]
pub struct BlockerConfig {
    /// Attribute indices whose tokens form blocking keys (empty = all).
    pub key_attributes: Vec<usize>,
    /// Minimum number of shared tokens for a pair to become a candidate.
    pub min_overlap: usize,
    /// Tokens appearing in more than this fraction of one table's records
    /// are ignored as stop words (they would block everything together).
    pub max_token_frequency: f64,
}

impl Default for BlockerConfig {
    fn default() -> Self {
        Self {
            key_attributes: Vec::new(),
            min_overlap: 1,
            max_token_frequency: 0.1,
        }
    }
}

/// A candidate pair: indices into the left and right tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CandidatePair {
    /// Row in the left table.
    pub left: usize,
    /// Row in the right table.
    pub right: usize,
}

/// Result of a blocking run.
#[derive(Debug, Clone)]
pub struct BlockingResult {
    /// Candidate pairs, sorted by `(left, right)`.
    pub candidates: Vec<CandidatePair>,
    /// `|A| × |B|`, the size of the full cross product.
    pub cross_product: usize,
}

impl BlockingResult {
    /// Fraction of the cross product removed (higher = cheaper matching).
    pub fn reduction_ratio(&self) -> f64 {
        if self.cross_product == 0 {
            return 0.0;
        }
        1.0 - self.candidates.len() as f64 / self.cross_product as f64
    }

    /// Fraction of `true_pairs` surviving in the candidate set
    /// (pair-completeness / blocking recall).
    pub fn recall(&self, true_pairs: &[CandidatePair]) -> f64 {
        if true_pairs.is_empty() {
            return 1.0;
        }
        let set: std::collections::HashSet<&CandidatePair> = self.candidates.iter().collect();
        let hit = true_pairs.iter().filter(|p| set.contains(p)).count();
        hit as f64 / true_pairs.len() as f64
    }
}

fn blocking_tokens(entity: &Entity, keys: &[usize], width: usize) -> Vec<String> {
    let mut out = Vec::new();
    let indices: Vec<usize> = if keys.is_empty() {
        (0..width).collect()
    } else {
        keys.to_vec()
    };
    for &i in &indices {
        if let Some(v) = entity.value(i) {
            out.extend(words(v));
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Run the overlap blocker over two entity tables sharing `schema`.
pub fn token_blocking(
    left: &[Entity],
    right: &[Entity],
    schema: &Schema,
    config: &BlockerConfig,
) -> BlockingResult {
    let width = schema.len();
    // inverted index over the right table, with stop-word removal
    let right_tokens: Vec<Vec<String>> = right
        .iter()
        .map(|e| blocking_tokens(e, &config.key_attributes, width))
        .collect();
    let mut doc_freq: HashMap<&str, usize> = HashMap::new();
    for toks in &right_tokens {
        for t in toks {
            *doc_freq.entry(t).or_insert(0) += 1;
        }
    }
    let cutoff = ((right.len() as f64) * config.max_token_frequency).ceil() as usize;
    let mut index: HashMap<&str, Vec<usize>> = HashMap::new();
    for (j, toks) in right_tokens.iter().enumerate() {
        for t in toks {
            if doc_freq[t.as_str()] <= cutoff.max(1) {
                index.entry(t).or_default().push(j);
            }
        }
    }

    let mut candidates = Vec::new();
    let mut overlap: HashMap<usize, usize> = HashMap::new();
    for (i, l) in left.iter().enumerate() {
        overlap.clear();
        for t in blocking_tokens(l, &config.key_attributes, width) {
            if let Some(matches) = index.get(t.as_str()) {
                for &j in matches {
                    *overlap.entry(j).or_insert(0) += 1;
                }
            }
        }
        for (&j, &count) in &overlap {
            if count >= config.min_overlap {
                candidates.push(CandidatePair { left: i, right: j });
            }
        }
    }
    candidates.sort_by_key(|p| (p.left, p.right));
    BlockingResult {
        candidates,
        cross_product: left.len() * right.len(),
    }
}

/// Which table a streamed record belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The left table (queries).
    Left,
    /// The right table (the indexed side; document frequencies and the
    /// stop-word cutoff are computed over this table, exactly as in
    /// [`token_blocking`]).
    Right,
}

impl Side {
    /// Stable wire name (`"left"` / `"right"`), used by the record ledger.
    pub fn name(self) -> &'static str {
        match self {
            Side::Left => "left",
            Side::Right => "right",
        }
    }

    /// Parse a wire name produced by [`Side::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "left" => Some(Side::Left),
            "right" => Some(Side::Right),
            _ => None,
        }
    }
}

/// A candidate pair of streamed records, by stable record id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandidateIdPair {
    /// Stable id of the left record.
    pub left: u64,
    /// Stable id of the right record.
    pub right: u64,
}

/// Per-token state of the incremental index.
#[derive(Default)]
struct TokenInfo {
    /// Right-side document frequency (`right.len()`, cached).
    df: usize,
    /// Left records containing the token.
    left: BTreeSet<u64>,
    /// Right records containing the token.
    right: BTreeSet<u64>,
    /// Whether the token currently contributes to the overlap map
    /// (i.e. `1 <= df <= max(cutoff, 1)` — not a stop word).
    active: bool,
}

/// An incrementally-updatable token-overlap blocking index.
///
/// Semantically this is [`token_blocking`] turned into a live data
/// structure: after **any** interleaving of record inserts, updates and
/// deletes on either table, [`candidates`](Self::candidates) equals the
/// candidate set a from-scratch [`token_blocking`] over the surviving
/// records would produce (same pairs, same `(left, right)` order) — the
/// equivalence the `tests/streaming.rs` property battery pins down. No
/// mutation ever rebuilds the index; each one touches only the tokens of
/// the affected record plus the tokens whose stop-word status flips when
/// the cutoff moves.
///
/// The moving parts:
///
/// * per-token postings for both tables plus the right-side document
///   frequency (`TokenInfo`);
/// * `by_df` — tokens bucketed by df, so a cutoff shift of the stop-word
///   threshold (`ceil(|right| · max_token_frequency)` changes when right
///   records come and go) finds exactly the tokens in the flipped df
///   range instead of scanning the vocabulary;
/// * `overlap` — the number of **distinct active shared tokens** per
///   `(left, right)` id pair, updated by deltas. A pair is a candidate
///   iff its count reaches `min_overlap`; entries at zero are removed,
///   so iteration order over the `BTreeMap` *is* candidate order.
pub struct IncrementalBlocker {
    config: BlockerConfig,
    width: usize,
    left_tokens: BTreeMap<u64, Vec<String>>,
    right_tokens: BTreeMap<u64, Vec<String>>,
    tokens: HashMap<String, TokenInfo>,
    by_df: BTreeMap<usize, BTreeSet<String>>,
    overlap: BTreeMap<(u64, u64), usize>,
}

impl IncrementalBlocker {
    /// An empty index over tables sharing `schema`.
    pub fn new(schema: &Schema, config: BlockerConfig) -> Self {
        Self {
            config,
            width: schema.len(),
            left_tokens: BTreeMap::new(),
            right_tokens: BTreeMap::new(),
            tokens: HashMap::new(),
            by_df: BTreeMap::new(),
            overlap: BTreeMap::new(),
        }
    }

    /// The blocker configuration.
    pub fn config(&self) -> &BlockerConfig {
        &self.config
    }

    /// Live record count on `side`.
    pub fn len(&self, side: Side) -> usize {
        match side {
            Side::Left => self.left_tokens.len(),
            Side::Right => self.right_tokens.len(),
        }
    }

    /// True when both tables are empty.
    pub fn is_empty(&self) -> bool {
        self.left_tokens.is_empty() && self.right_tokens.is_empty()
    }

    /// `|left| × |right|` over the live records.
    pub fn cross_product(&self) -> usize {
        self.left_tokens.len() * self.right_tokens.len()
    }

    /// Live record ids on `side`, ascending.
    pub fn ids(&self, side: Side) -> Vec<u64> {
        match side {
            Side::Left => self.left_tokens.keys().copied().collect(),
            Side::Right => self.right_tokens.keys().copied().collect(),
        }
    }

    /// Whether `id` is live on `side`.
    pub fn contains(&self, side: Side, id: u64) -> bool {
        match side {
            Side::Left => self.left_tokens.contains_key(&id),
            Side::Right => self.right_tokens.contains_key(&id),
        }
    }

    /// Insert or replace the record `id` on `side`. Covers both the
    /// `Insert` and `Update` ledger events — the index only cares about
    /// the record's final token set.
    pub fn upsert(&mut self, side: Side, id: u64, entity: &Entity) {
        let new = blocking_tokens(entity, &self.config.key_attributes, self.width);
        self.apply(side, id, Some(new));
    }

    /// Remove the record `id` from `side`. Returns `false` (and changes
    /// nothing) when the id was not live.
    pub fn remove(&mut self, side: Side, id: u64) -> bool {
        if !self.contains(side, id) {
            return false;
        }
        self.apply(side, id, None);
        true
    }

    /// The effective stop-word cutoff for the current right-table size.
    fn cutoff(&self) -> usize {
        self.cutoff_for(self.right_tokens.len())
    }

    fn should_be_active(df: usize, cutoff: usize) -> bool {
        df >= 1 && df <= cutoff
    }

    fn inc_overlap(overlap: &mut BTreeMap<(u64, u64), usize>, l: u64, r: u64) {
        *overlap.entry((l, r)).or_insert(0) += 1;
    }

    fn dec_overlap(overlap: &mut BTreeMap<(u64, u64), usize>, l: u64, r: u64) {
        match overlap.get_mut(&(l, r)) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                overlap.remove(&(l, r));
            }
            None => unreachable!("overlap decrement without a prior increment"),
        }
    }

    /// One mutation: replace (or drop, `new_tokens = None`) the token set
    /// of `id` on `side`, then restore every invariant.
    fn apply(&mut self, side: Side, id: u64, new_tokens: Option<Vec<String>>) {
        // cutoff depends on |right| *before* this mutation
        let old_cutoff = self.cutoff_for(self.right_tokens.len());
        let old = {
            let table = match side {
                Side::Left => &mut self.left_tokens,
                Side::Right => &mut self.right_tokens,
            };
            match &new_tokens {
                Some(toks) => table.insert(id, toks.clone()),
                None => table.remove(&id),
            }
        }
        .unwrap_or_default();
        let new = new_tokens.unwrap_or_default();
        // token-set deltas for the mutated record (both lists are sorted
        // and deduped by `blocking_tokens`)
        let removed: Vec<&str> = old
            .iter()
            .filter(|t| new.binary_search(t).is_err())
            .map(String::as_str)
            .collect();
        let added: Vec<&str> = new
            .iter()
            .filter(|t| old.binary_search(t).is_err())
            .map(String::as_str)
            .collect();

        // 1. postings + contribution deltas under the *current* activity
        //    flags: the overlap map always equals the sum over active
        //    tokens of their left×right products
        for &t in &removed {
            let info = self.tokens.get_mut(t).expect("posted token");
            match side {
                Side::Left => {
                    info.left.remove(&id);
                    if info.active {
                        for &r in &info.right {
                            Self::dec_overlap(&mut self.overlap, id, r);
                        }
                    }
                }
                Side::Right => {
                    info.right.remove(&id);
                    if info.active {
                        for &l in &info.left {
                            Self::dec_overlap(&mut self.overlap, l, id);
                        }
                    }
                    Self::move_df(&mut self.by_df, t, info.df, info.df - 1);
                    info.df -= 1;
                }
            }
        }
        for &t in &added {
            let info = self.tokens.entry(t.to_owned()).or_default();
            match side {
                Side::Left => {
                    info.left.insert(id);
                    if info.active {
                        for &r in &info.right {
                            Self::inc_overlap(&mut self.overlap, id, r);
                        }
                    }
                }
                Side::Right => {
                    info.right.insert(id);
                    if info.active {
                        for &l in &info.left {
                            Self::inc_overlap(&mut self.overlap, l, id);
                        }
                    }
                    Self::move_df(&mut self.by_df, t, info.df, info.df + 1);
                    info.df += 1;
                }
            }
        }

        // 2. activity refresh: the touched tokens (df changed) plus every
        //    token whose df sits in the range the cutoff just swept over
        let new_cutoff = self.cutoff();
        let mut dirty: BTreeSet<String> = removed
            .iter()
            .chain(added.iter())
            .map(|t| (*t).to_owned())
            .collect();
        let (lo, hi) = (old_cutoff.min(new_cutoff), old_cutoff.max(new_cutoff));
        if lo != hi {
            for (_, bucket) in self.by_df.range(lo + 1..=hi) {
                dirty.extend(bucket.iter().cloned());
            }
        }
        for t in dirty {
            let Some(info) = self.tokens.get_mut(&t) else {
                continue;
            };
            let should = Self::should_be_active(info.df, new_cutoff);
            if should != info.active {
                for &l in &info.left {
                    for &r in &info.right {
                        if should {
                            Self::inc_overlap(&mut self.overlap, l, r);
                        } else {
                            Self::dec_overlap(&mut self.overlap, l, r);
                        }
                    }
                }
                info.active = should;
            }
            if info.df == 0 && info.left.is_empty() && info.right.is_empty() {
                self.tokens.remove(&t);
            }
        }
    }

    fn cutoff_for(&self, right_len: usize) -> usize {
        let c = ((right_len as f64) * self.config.max_token_frequency).ceil() as usize;
        c.max(1)
    }

    fn move_df(by_df: &mut BTreeMap<usize, BTreeSet<String>>, t: &str, from: usize, to: usize) {
        if from >= 1 {
            if let Some(bucket) = by_df.get_mut(&from) {
                bucket.remove(t);
                if bucket.is_empty() {
                    by_df.remove(&from);
                }
            }
        }
        if to >= 1 {
            by_df.entry(to).or_default().insert(t.to_owned());
        }
    }

    /// Current candidate pairs, sorted by `(left, right)` record id —
    /// the same order [`token_blocking`] yields after mapping row
    /// indices to ids in ascending-id order.
    pub fn candidates(&self) -> Vec<CandidateIdPair> {
        self.overlap
            .iter()
            .filter(|(_, &count)| count >= self.config.min_overlap)
            .map(|(&(left, right), _)| CandidateIdPair { left, right })
            .collect()
    }

    /// Number of current candidate pairs.
    pub fn candidate_count(&self) -> usize {
        self.overlap
            .values()
            .filter(|&&c| c >= self.config.min_overlap)
            .count()
    }

    /// A canonical, deterministic dump of the entire index state: live
    /// token sets per record, the cutoff, and every overlap cell. Two
    /// indexes are **bit-identical** iff their dumps are equal — this is
    /// what the replay-from-ledger cold-start test fingerprints.
    pub fn canonical_dump(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "cutoff {}", self.cutoff());
        for (id, toks) in &self.left_tokens {
            let _ = writeln!(out, "L {id} {}", toks.join("\u{1f}"));
        }
        for (id, toks) in &self.right_tokens {
            let _ = writeln!(out, "R {id} {}", toks.join("\u{1f}"));
        }
        for ((l, r), count) in &self.overlap {
            let _ = writeln!(out, "O {l} {r} {count}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{Domain, Restaurant};
    use crate::noise::{corrupt_entity, NoiseConfig};
    use linalg::Rng;

    fn entity(vals: &[&str]) -> Entity {
        Entity::new(vals.iter().map(|v| Some((*v).to_owned())).collect())
    }

    fn toy_schema() -> Schema {
        use crate::schema::{AttrType, Attribute};
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("city", AttrType::Text),
        ])
    }

    #[test]
    fn shared_tokens_create_candidates() {
        let schema = toy_schema();
        let left = vec![
            entity(&["golden dragon", "boston"]),
            entity(&["blue ocean", "miami"]),
        ];
        let right = vec![
            entity(&["golden dragon cafe", "boston"]),
            entity(&["red lantern", "chicago"]),
        ];
        let r = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert!(r.candidates.contains(&CandidatePair { left: 0, right: 0 }));
        assert!(!r.candidates.contains(&CandidatePair { left: 1, right: 1 }));
        assert_eq!(r.cross_product, 4);
    }

    #[test]
    fn min_overlap_tightens_the_set() {
        let schema = toy_schema();
        let left = vec![entity(&["alpha beta", "x"])];
        let right = vec![entity(&["alpha gamma", "y"]), entity(&["alpha beta", "z"])];
        let loose = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                min_overlap: 1,
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        let tight = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                min_overlap: 2,
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert_eq!(loose.candidates.len(), 2);
        assert_eq!(tight.candidates.len(), 1);
        assert!(tight.reduction_ratio() > loose.reduction_ratio());
    }

    #[test]
    fn stop_words_are_ignored() {
        let schema = toy_schema();
        // "cafe" appears in every right record → removed as a stop word
        let left = vec![entity(&["cafe unique", "a"])];
        let right: Vec<Entity> = (0..20)
            .map(|i| entity(&[&format!("cafe place{i}"), "b"]))
            .collect();
        let r = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                max_token_frequency: 0.2,
                ..BlockerConfig::default()
            },
        );
        assert!(r.candidates.is_empty(), "{:?}", r.candidates);
    }

    #[test]
    fn key_attributes_restrict_evidence() {
        let schema = toy_schema();
        let left = vec![entity(&["unique name", "shared city"])];
        let right = vec![entity(&["other words", "shared city"])];
        // block on name only: no candidate
        let name_only = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                key_attributes: vec![0],
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert!(name_only.candidates.is_empty());
        // block on all attributes: city overlap creates the candidate
        let all = token_blocking(
            &left,
            &right,
            &schema,
            &BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        assert_eq!(all.candidates.len(), 1);
    }

    #[test]
    fn blocking_keeps_true_duplicates_on_synthetic_tables() {
        // generate restaurant entities, corrupt copies into a second table,
        // and verify blocking recall is high while reduction is substantial
        let domain = Restaurant;
        let schema = domain.schema();
        let mut rng = Rng::new(7);
        let cfg = NoiseConfig::from_level(0.2);
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut truth = Vec::new();
        for i in 0..120 {
            let base = domain.generate(&mut rng);
            let dup = corrupt_entity(&base, &schema, &cfg, &[], &mut rng);
            left.push(base);
            right.push(dup);
            truth.push(CandidatePair { left: i, right: i });
        }
        let r = token_blocking(&left, &right, &schema, &BlockerConfig::default());
        assert!(r.recall(&truth) > 0.9, "recall {}", r.recall(&truth));
        assert!(
            r.reduction_ratio() > 0.5,
            "reduction {}",
            r.reduction_ratio()
        );
    }

    #[test]
    fn empty_tables_degenerate_cleanly() {
        let schema = toy_schema();
        let r = token_blocking(&[], &[], &schema, &BlockerConfig::default());
        assert!(r.candidates.is_empty());
        assert_eq!(r.reduction_ratio(), 0.0);
        assert_eq!(r.recall(&[]), 1.0);
    }

    /// Batch-rebuild the live records of `inc` with [`token_blocking`] and
    /// return the candidate set as id pairs (rows map to ids in
    /// ascending-id order, which preserves the `(left, right)` sort).
    fn batch_candidates(inc: &IncrementalBlocker, schema: &Schema) -> Vec<CandidateIdPair> {
        let left_ids = inc.ids(Side::Left);
        let right_ids = inc.ids(Side::Right);
        let left: Vec<Entity> = left_ids
            .iter()
            .map(|id| inc.live_entity(Side::Left, *id))
            .collect();
        let right: Vec<Entity> = right_ids
            .iter()
            .map(|id| inc.live_entity(Side::Right, *id))
            .collect();
        let r = token_blocking(&left, &right, schema, inc.config());
        r.candidates
            .iter()
            .map(|p| CandidateIdPair {
                left: left_ids[p.left],
                right: right_ids[p.right],
            })
            .collect()
    }

    impl IncrementalBlocker {
        /// Test helper: reconstruct a synthetic entity whose blocking
        /// tokens equal the live record's (one attribute holding the
        /// joined token list — `blocking_tokens` re-derives the same
        /// sorted deduped set from it).
        fn live_entity(&self, side: Side, id: u64) -> Entity {
            let toks = match side {
                Side::Left => &self.left_tokens[&id],
                Side::Right => &self.right_tokens[&id],
            };
            let mut vals = vec![Some(toks.join(" "))];
            vals.resize(self.width, None);
            Entity::new(vals)
        }
    }

    #[test]
    fn incremental_matches_batch_on_simple_edits() {
        let schema = toy_schema();
        let mut inc = IncrementalBlocker::new(
            &schema,
            BlockerConfig {
                max_token_frequency: 1.0,
                ..BlockerConfig::default()
            },
        );
        inc.upsert(Side::Left, 10, &entity(&["golden dragon", "boston"]));
        inc.upsert(Side::Right, 20, &entity(&["golden dragon cafe", "boston"]));
        inc.upsert(Side::Right, 21, &entity(&["red lantern", "chicago"]));
        assert_eq!(
            inc.candidates(),
            vec![CandidateIdPair {
                left: 10,
                right: 20
            }]
        );
        assert_eq!(inc.candidates(), batch_candidates(&inc, &schema));

        // update flips the pair to the other right record
        inc.upsert(Side::Left, 10, &entity(&["red lantern", "chicago"]));
        assert_eq!(
            inc.candidates(),
            vec![CandidateIdPair {
                left: 10,
                right: 21
            }]
        );
        assert_eq!(inc.candidates(), batch_candidates(&inc, &schema));

        // delete clears it
        assert!(inc.remove(Side::Right, 21));
        assert!(!inc.remove(Side::Right, 21), "second delete is a no-op");
        assert!(inc.candidates().is_empty());
        assert_eq!(inc.cross_product(), 1);
    }

    #[test]
    fn incremental_tracks_stop_word_cutoff_shifts() {
        let schema = toy_schema();
        // max_token_frequency 0.2 → cutoff moves as the right table grows
        let config = BlockerConfig {
            max_token_frequency: 0.2,
            ..BlockerConfig::default()
        };
        let mut inc = IncrementalBlocker::new(&schema, config);
        inc.upsert(Side::Left, 0, &entity(&["cafe unique", "a"]));
        for i in 0..20u64 {
            inc.upsert(
                Side::Right,
                100 + i,
                &entity(&[&format!("cafe place{i}"), "b"]),
            );
            // at every intermediate size, the incremental candidate set
            // must equal a from-scratch rebuild (the cutoff crosses
            // "cafe"'s df several times on the way up)
            assert_eq!(
                inc.candidates(),
                batch_candidates(&inc, &schema),
                "after {} right records",
                i + 1
            );
        }
        assert!(inc.candidates().is_empty(), "{:?}", inc.candidates());
        // shrink back down: deletions move the cutoff the other way
        for i in (0..20u64).rev() {
            assert!(inc.remove(Side::Right, 100 + i));
            assert_eq!(
                inc.candidates(),
                batch_candidates(&inc, &schema),
                "after shrinking to {i} right records"
            );
        }
        assert!(inc.is_empty() || inc.len(Side::Right) == 0);
    }

    #[test]
    fn random_interleavings_stay_equivalent_to_batch_rebuild() {
        let domain = Restaurant;
        let schema = domain.schema();
        let cfg = NoiseConfig::from_level(0.3);
        for seed in 0..6u64 {
            let mut rng = Rng::new(seed + 500);
            let mut inc = IncrementalBlocker::new(&schema, BlockerConfig::default());
            for step in 0..120 {
                let side = if rng.chance(0.5) {
                    Side::Left
                } else {
                    Side::Right
                };
                let live = inc.ids(side);
                let op = rng.f64();
                if op < 0.25 && !live.is_empty() {
                    // delete a live record
                    let id = live[rng.below(live.len())];
                    assert!(inc.remove(side, id));
                } else if op < 0.55 && !live.is_empty() {
                    // update a live record with a corrupted regeneration
                    let id = live[rng.below(live.len())];
                    let base = domain.generate(&mut rng);
                    let e = corrupt_entity(&base, &schema, &cfg, &[], &mut rng);
                    inc.upsert(side, id, &e);
                } else {
                    // insert a fresh record
                    let id = 1000 * (seed + 1) + step;
                    inc.upsert(side, id, &domain.generate(&mut rng));
                }
                if step % 10 == 9 {
                    assert_eq!(
                        inc.candidates(),
                        batch_candidates(&inc, &schema),
                        "seed {seed} step {step}"
                    );
                }
            }
            assert_eq!(inc.candidates(), batch_candidates(&inc, &schema));
        }
    }
}
