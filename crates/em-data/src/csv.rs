//! Minimal CSV persistence for EM datasets.
//!
//! The format matches the DeepMatcher distribution of the Magellan
//! benchmark: one header row `label,left_<attr>...,right_<attr>...` and one
//! row per record pair. Quoting follows RFC 4180 (fields containing commas,
//! quotes or newlines are double-quoted; embedded quotes doubled). Missing
//! values serialize as empty fields and load back as `None`.
//!
//! Loading is hardened against *torn files*: a process killed mid-write
//! leaves a last line with too few fields (or a quote that never closes),
//! and [`read_csv`] reports that as a typed [`CsvError`] carrying the byte
//! offset where the intact prefix ends — never a panic, and never a
//! silently dropped row.

use crate::dataset::EmDataset;
use crate::record::{Entity, RecordPair};
use crate::schema::{AttrType, Attribute, DatasetKind, Schema};
use linalg::Rng;
use std::fmt;
use std::io::{self, BufRead, Write};

/// Why a CSV failed to load. Every variant that points at file content
/// carries `byte_offset`: the offset at which the offending record
/// *starts*, i.e. the file is intact on `[0, byte_offset)` — exactly what
/// a recovery tool needs in order to truncate a torn tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header row is missing or is not `label,left_*...,right_*...`.
    BadHeader {
        /// What was wrong with it.
        reason: String,
    },
    /// A fully terminated row with the wrong number of fields.
    RaggedRow {
        /// 1-based physical line the record starts on.
        line: u64,
        /// Byte offset the record starts at.
        byte_offset: u64,
        /// Fields found.
        got: usize,
        /// Fields the header promises.
        expected: usize,
    },
    /// The file ends mid-record — no trailing newline and too few fields,
    /// the signature of a crash mid-write.
    TruncatedLine {
        /// 1-based physical line the torn record starts on.
        line: u64,
        /// Byte offset of the torn record; truncating the file to this
        /// length recovers the intact prefix.
        byte_offset: u64,
        /// Fields found in the partial record.
        got: usize,
        /// Fields the header promises.
        expected: usize,
    },
    /// A quoted field was still open when the file ended.
    UnclosedQuote {
        /// 1-based physical line the record with the open quote starts on.
        line: u64,
        /// Byte offset of that record (the intact prefix ends here).
        byte_offset: u64,
    },
    /// The underlying reader failed.
    Io(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadHeader { reason } => write!(f, "bad CSV header: {reason}"),
            CsvError::RaggedRow {
                line,
                byte_offset,
                got,
                expected,
            } => write!(
                f,
                "line {line} (byte offset {byte_offset}): row has {got} fields, expected {expected}"
            ),
            CsvError::TruncatedLine {
                line,
                byte_offset,
                got,
                expected,
            } => write!(
                f,
                "line {line}: file ends mid-record with {got} of {expected} fields and no \
                 trailing newline (torn write?); truncate to {byte_offset} bytes to recover"
            ),
            CsvError::UnclosedQuote { line, byte_offset } => write!(
                f,
                "line {line}: quoted field never closes before end of file \
                 (torn write?); truncate to {byte_offset} bytes to recover"
            ),
            CsvError::Io(msg) => write!(f, "CSV read failed: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<CsvError> for io::Error {
    fn from(e: CsvError) -> Self {
        let kind = match &e {
            CsvError::Io(_) => io::ErrorKind::Other,
            _ => io::ErrorKind::InvalidData,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// Escape one field per RFC 4180.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Split a (possibly partial) record into fields. Returns the fields and
/// whether a quoted field was still open at the end — `true` means the
/// record continues on the next physical line (an embedded newline) or
/// the file was cut off mid-quote.
fn split_fields(record: &str) -> (Vec<String>, bool) {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    (fields, in_quotes)
}

/// Parse one complete CSV line into fields (handles quoted fields).
#[cfg(test)]
fn parse_line(line: &str) -> Vec<String> {
    split_fields(line).0
}

/// One logical record: its fields, the 1-based physical line and byte
/// offset it starts at, and whether its final line was `\n`-terminated.
struct Record {
    fields: Vec<String>,
    line: u64,
    byte_offset: u64,
    terminated: bool,
}

/// Streams logical records off a reader, tracking byte offsets so torn
/// tails are reported precisely. A quoted field may span physical lines
/// (RFC 4180 embedded newline); a quote still open at EOF is an error.
struct RecordReader<R> {
    reader: R,
    offset: u64,
    line: u64,
}

impl<R: BufRead> RecordReader<R> {
    fn new(reader: R) -> Self {
        Self {
            reader,
            offset: 0,
            line: 0,
        }
    }

    /// The next logical record, or `None` at clean end of file. Blank
    /// lines between records are skipped.
    fn next_record(&mut self) -> Result<Option<Record>, CsvError> {
        loop {
            let start_offset = self.offset;
            let start_line = self.line + 1;
            let mut record = String::new();
            let mut terminated;
            loop {
                let mut raw = String::new();
                let n = self
                    .reader
                    .read_line(&mut raw)
                    .map_err(|e| CsvError::Io(e.to_string()))?;
                if n == 0 {
                    if record.is_empty() {
                        return Ok(None);
                    }
                    // a quoted field swallowed the rest of the file
                    return Err(CsvError::UnclosedQuote {
                        line: start_line,
                        byte_offset: start_offset,
                    });
                }
                self.offset += n as u64;
                self.line += 1;
                terminated = raw.ends_with('\n');
                if terminated {
                    raw.pop();
                    if raw.ends_with('\r') {
                        raw.pop();
                    }
                }
                record.push_str(&raw);
                let (fields, open) = split_fields(&record);
                if !open {
                    if fields.len() == 1 && fields[0].trim().is_empty() {
                        break; // blank line between records
                    }
                    return Ok(Some(Record {
                        fields,
                        line: start_line,
                        byte_offset: start_offset,
                        terminated,
                    }));
                }
                if !terminated {
                    // EOF inside the open quote
                    return Err(CsvError::UnclosedQuote {
                        line: start_line,
                        byte_offset: start_offset,
                    });
                }
                record.push('\n'); // the newline belongs to the quoted field
            }
        }
    }
}

/// Write a dataset (all splits, in split order) as CSV.
pub fn write_csv<W: Write>(dataset: &EmDataset, out: &mut W) -> io::Result<()> {
    let schema = dataset.schema();
    let mut header = vec!["label".to_owned()];
    for side in ["left", "right"] {
        for attr in schema.attributes() {
            header.push(format!("{side}_{}", attr.name));
        }
    }
    writeln!(out, "{}", header.join(","))?;
    for pair in dataset.pairs() {
        let mut row = vec![if pair.label { "1" } else { "0" }.to_owned()];
        for entity in [&pair.left, &pair.right] {
            for i in 0..schema.len() {
                row.push(escape(entity.value_or_empty(i)));
            }
        }
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Load a dataset from CSV written by [`write_csv`] (or hand-authored in the
/// same layout). Attribute types are inferred: a column whose non-empty
/// values all parse as numbers is `Numeric`, otherwise `Text`.
///
/// The loaded pairs are re-split 60/20/20 with `seed`.
///
/// A file cut off mid-write fails with [`CsvError::TruncatedLine`] (or
/// [`CsvError::UnclosedQuote`]) carrying the byte offset of the intact
/// prefix; a complete last row without a trailing newline is accepted.
pub fn read_csv<R: BufRead>(
    name: &str,
    kind: DatasetKind,
    reader: R,
    seed: u64,
) -> Result<EmDataset, CsvError> {
    let mut records = RecordReader::new(reader);
    let header = records.next_record()?.ok_or_else(|| CsvError::BadHeader {
        reason: "empty CSV".to_owned(),
    })?;
    let cols = header.fields;
    if cols.first().map(String::as_str) != Some("label")
        || cols.len() < 3
        || cols.len().is_multiple_of(2)
    {
        return Err(CsvError::BadHeader {
            reason: "expected header: label,left_*...,right_*...".to_owned(),
        });
    }
    let width = (cols.len() - 1) / 2;
    let attr_names: Vec<String> = cols[1..=width]
        .iter()
        .map(|c| c.strip_prefix("left_").unwrap_or(c).to_owned())
        .collect();

    type RawPair = (bool, Vec<Option<String>>, Vec<Option<String>>);
    let mut raw_pairs: Vec<RawPair> = Vec::new();
    while let Some(record) = records.next_record()? {
        let fields = record.fields;
        if fields.len() != cols.len() {
            // short and unterminated = the classic torn tail of a crash
            // mid-write; anything else is a malformed row in its own right
            return Err(if fields.len() < cols.len() && !record.terminated {
                CsvError::TruncatedLine {
                    line: record.line,
                    byte_offset: record.byte_offset,
                    got: fields.len(),
                    expected: cols.len(),
                }
            } else {
                CsvError::RaggedRow {
                    line: record.line,
                    byte_offset: record.byte_offset,
                    got: fields.len(),
                    expected: cols.len(),
                }
            });
        }
        let label = fields[0].trim() == "1";
        let to_opt = |s: &String| {
            if s.is_empty() {
                None
            } else {
                Some(s.clone())
            }
        };
        let left: Vec<Option<String>> = fields[1..=width].iter().map(to_opt).collect();
        let right: Vec<Option<String>> = fields[width + 1..].iter().map(to_opt).collect();
        raw_pairs.push((label, left, right));
    }

    // infer per-column types from both sides
    let mut numeric = vec![true; width];
    let mut seen = vec![false; width];
    for (_, l, r) in &raw_pairs {
        for side in [l, r] {
            for (i, v) in side.iter().enumerate() {
                if let Some(v) = v {
                    seen[i] = true;
                    if v.trim().parse::<f64>().is_err() {
                        numeric[i] = false;
                    }
                }
            }
        }
    }
    let attributes: Vec<Attribute> = attr_names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Attribute::new(
                n,
                if seen[i] && numeric[i] {
                    AttrType::Numeric
                } else {
                    AttrType::Text
                },
            )
        })
        .collect();
    let schema = Schema::new(attributes);
    let pairs: Vec<RecordPair> = raw_pairs
        .into_iter()
        .map(|(label, l, r)| RecordPair::new(Entity::new(l), Entity::new(r), label))
        .collect();
    let mut rng = Rng::new(seed);
    Ok(EmDataset::with_split(name, kind, schema, pairs, &mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magellan::MagellanDataset;
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_pairs_and_ratio() {
        let d = MagellanDataset::SBR.profile().generate(1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let loaded = read_csv("S-BR", d.kind(), BufReader::new(&buf[..]), 99).unwrap();
        assert_eq!(loaded.len(), d.len());
        assert!((loaded.match_ratio() - d.match_ratio()).abs() < 1e-9);
        assert_eq!(loaded.schema().len(), d.schema().len());
    }

    #[test]
    fn escaping_roundtrip() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(parse_line("a,\"b,c\",\"d\"\"e\""), vec!["a", "b,c", "d\"e"]);
    }

    #[test]
    fn missing_values_roundtrip() {
        let csv = "label,left_a,left_b,right_a,right_b\n1,x,,y,3\n0,,2,z,\n";
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        let total_missing: usize = d
            .pairs()
            .iter()
            .map(|p| p.left.missing_count() + p.right.missing_count())
            .sum();
        assert_eq!(total_missing, 3);
    }

    #[test]
    fn type_inference() {
        let csv = "label,left_t,left_n,right_t,right_n\n1,abc,1.5,def,2\n0,ghi,3,jkl,4.5\n";
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.schema().attr(0).ty, AttrType::Text);
        assert_eq!(d.schema().attr(1).ty, AttrType::Numeric);
    }

    #[test]
    fn rejects_bad_header() {
        let csv = "foo,bar\n";
        assert!(read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1
        )
        .is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "label,left_a,right_a\n1,x\n";
        let err = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CsvError::RaggedRow {
                line: 2,
                byte_offset: 21,
                got: 2,
                expected: 3
            }
        );
    }

    #[test]
    fn truncated_last_line_is_a_typed_error_with_the_recovery_offset() {
        // simulate a crash mid-write: chop the serialized file mid-row
        let d = MagellanDataset::SBR.profile().generate(3);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let torn = &buf[..buf.len() - 7];
        let err = read_csv("t", d.kind(), BufReader::new(torn), 1).unwrap_err();
        match err {
            CsvError::TruncatedLine {
                byte_offset,
                got,
                expected,
                ..
            } => {
                assert!(got < expected, "torn row must be short ({got}/{expected})");
                // the reported offset is exactly where the torn record
                // starts: truncating there yields a loadable file
                let recovered = read_csv(
                    "t",
                    d.kind(),
                    BufReader::new(&torn[..byte_offset as usize]),
                    1,
                )
                .unwrap();
                assert_eq!(recovered.len(), d.len() - 1);
            }
            other => panic!("expected TruncatedLine, got {other:?}"),
        }
    }

    #[test]
    fn complete_last_row_without_trailing_newline_is_accepted() {
        let csv = "label,left_a,right_a\n1,x,y\n0,p,q"; // no final \n
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn quote_left_open_by_truncation_is_reported() {
        let csv = "label,left_a,right_a\n1,x,y\n0,\"p,q"; // quote never closes
        let err = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap_err();
        assert_eq!(
            err,
            CsvError::UnclosedQuote {
                line: 3,
                byte_offset: 27
            }
        );
        assert!(err.to_string().contains("truncate to 27 bytes"));
    }

    #[test]
    fn quoted_embedded_newline_spans_physical_lines() {
        let csv = "label,left_a,right_a\n1,\"two\nlines\",y\n";
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.pairs()[0].left.value_or_empty(0), "two\nlines");
    }

    #[test]
    fn embedded_newline_roundtrips_through_write_and_read() {
        // write_csv quotes fields containing '\n'; the reader must
        // reassemble them instead of erroring on the split line
        assert_eq!(escape("two\nlines"), "\"two\nlines\"");
        let csv = format!("label,left_a,right_a\n1,{},{}\n", escape("two\nlines"), "y");
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.pairs()[0].left.value_or_empty(0), "two\nlines");
    }

    #[test]
    fn csv_error_converts_to_io_error() {
        let err = CsvError::TruncatedLine {
            line: 9,
            byte_offset: 100,
            got: 1,
            expected: 3,
        };
        let io_err: std::io::Error = err.into();
        assert_eq!(io_err.kind(), std::io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("truncate to 100 bytes"));
    }
}
