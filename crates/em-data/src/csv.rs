//! Minimal CSV persistence for EM datasets.
//!
//! The format matches the DeepMatcher distribution of the Magellan
//! benchmark: one header row `label,left_<attr>...,right_<attr>...` and one
//! row per record pair. Quoting follows RFC 4180 (fields containing commas,
//! quotes or newlines are double-quoted; embedded quotes doubled). Missing
//! values serialize as empty fields and load back as `None`.

use crate::dataset::EmDataset;
use crate::record::{Entity, RecordPair};
use crate::schema::{AttrType, Attribute, DatasetKind, Schema};
use linalg::Rng;
use std::io::{self, BufRead, Write};

/// Escape one field per RFC 4180.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Parse one CSV line into fields (handles quoted fields).
fn parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Write a dataset (all splits, in split order) as CSV.
pub fn write_csv<W: Write>(dataset: &EmDataset, out: &mut W) -> io::Result<()> {
    let schema = dataset.schema();
    let mut header = vec!["label".to_owned()];
    for side in ["left", "right"] {
        for attr in schema.attributes() {
            header.push(format!("{side}_{}", attr.name));
        }
    }
    writeln!(out, "{}", header.join(","))?;
    for pair in dataset.pairs() {
        let mut row = vec![if pair.label { "1" } else { "0" }.to_owned()];
        for entity in [&pair.left, &pair.right] {
            for i in 0..schema.len() {
                row.push(escape(entity.value_or_empty(i)));
            }
        }
        writeln!(out, "{}", row.join(","))?;
    }
    Ok(())
}

/// Load a dataset from CSV written by [`write_csv`] (or hand-authored in the
/// same layout). Attribute types are inferred: a column whose non-empty
/// values all parse as numbers is `Numeric`, otherwise `Text`.
///
/// The loaded pairs are re-split 60/20/20 with `seed`.
pub fn read_csv<R: BufRead>(
    name: &str,
    kind: DatasetKind,
    reader: R,
    seed: u64,
) -> io::Result<EmDataset> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty CSV"))??;
    let cols = parse_line(&header);
    if cols.first().map(String::as_str) != Some("label")
        || cols.len() < 3
        || cols.len().is_multiple_of(2)
    {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected header: label,left_*...,right_*...",
        ));
    }
    let width = (cols.len() - 1) / 2;
    let attr_names: Vec<String> = cols[1..=width]
        .iter()
        .map(|c| c.strip_prefix("left_").unwrap_or(c).to_owned())
        .collect();

    type RawPair = (bool, Vec<Option<String>>, Vec<Option<String>>);
    let mut raw_pairs: Vec<RawPair> = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_line(&line);
        if fields.len() != cols.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row has {} fields, expected {}", fields.len(), cols.len()),
            ));
        }
        let label = fields[0].trim() == "1";
        let to_opt = |s: &String| {
            if s.is_empty() {
                None
            } else {
                Some(s.clone())
            }
        };
        let left: Vec<Option<String>> = fields[1..=width].iter().map(to_opt).collect();
        let right: Vec<Option<String>> = fields[width + 1..].iter().map(to_opt).collect();
        raw_pairs.push((label, left, right));
    }

    // infer per-column types from both sides
    let mut numeric = vec![true; width];
    let mut seen = vec![false; width];
    for (_, l, r) in &raw_pairs {
        for side in [l, r] {
            for (i, v) in side.iter().enumerate() {
                if let Some(v) = v {
                    seen[i] = true;
                    if v.trim().parse::<f64>().is_err() {
                        numeric[i] = false;
                    }
                }
            }
        }
    }
    let attributes: Vec<Attribute> = attr_names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            Attribute::new(
                n,
                if seen[i] && numeric[i] {
                    AttrType::Numeric
                } else {
                    AttrType::Text
                },
            )
        })
        .collect();
    let schema = Schema::new(attributes);
    let pairs: Vec<RecordPair> = raw_pairs
        .into_iter()
        .map(|(label, l, r)| RecordPair::new(Entity::new(l), Entity::new(r), label))
        .collect();
    let mut rng = Rng::new(seed);
    Ok(EmDataset::with_split(name, kind, schema, pairs, &mut rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::magellan::MagellanDataset;
    use std::io::BufReader;

    #[test]
    fn roundtrip_preserves_pairs_and_ratio() {
        let d = MagellanDataset::SBR.profile().generate(1);
        let mut buf = Vec::new();
        write_csv(&d, &mut buf).unwrap();
        let loaded = read_csv("S-BR", d.kind(), BufReader::new(&buf[..]), 99).unwrap();
        assert_eq!(loaded.len(), d.len());
        assert!((loaded.match_ratio() - d.match_ratio()).abs() < 1e-9);
        assert_eq!(loaded.schema().len(), d.schema().len());
    }

    #[test]
    fn escaping_roundtrip() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(parse_line("a,\"b,c\",\"d\"\"e\""), vec!["a", "b,c", "d\"e"]);
    }

    #[test]
    fn missing_values_roundtrip() {
        let csv = "label,left_a,left_b,right_a,right_b\n1,x,,y,3\n0,,2,z,\n";
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.len(), 2);
        let total_missing: usize = d
            .pairs()
            .iter()
            .map(|p| p.left.missing_count() + p.right.missing_count())
            .sum();
        assert_eq!(total_missing, 3);
    }

    #[test]
    fn type_inference() {
        let csv = "label,left_t,left_n,right_t,right_n\n1,abc,1.5,def,2\n0,ghi,3,jkl,4.5\n";
        let d = read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1,
        )
        .unwrap();
        assert_eq!(d.schema().attr(0).ty, AttrType::Text);
        assert_eq!(d.schema().attr(1).ty, AttrType::Numeric);
    }

    #[test]
    fn rejects_bad_header() {
        let csv = "foo,bar\n";
        assert!(read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1
        )
        .is_err());
    }

    #[test]
    fn rejects_ragged_rows() {
        let csv = "label,left_a,right_a\n1,x\n";
        assert!(read_csv(
            "t",
            DatasetKind::Structured,
            BufReader::new(csv.as_bytes()),
            1
        )
        .is_err());
    }
}
