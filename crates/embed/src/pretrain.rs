//! Synthetic generalist pretraining corpus and the masked-LM objective.
//!
//! The paper's embedders are checkpoints pretrained on Wikipedia-scale
//! corpora. We cannot ship those weights, so each family is pretrained here
//! on a deterministic synthetic corpus that mixes the genre of text EM
//! records contain: titles, name lists, typed fields, prices and model
//! numbers. The *function* the adapter needs — contextual subword vectors
//! where similar surface strings land close together — emerges after a few
//! thousand MLM steps at this scale.

use linalg::Rng;
use text::vocab::Vocab;
use text::{SubwordTokenizer, SubwordVocabBuilder};

/// Words used to synthesize the generalist corpus (deliberately overlapping
/// the domains of the Magellan generators without copying their pools).
const TOPIC_WORDS: &[&str] = &[
    "system",
    "model",
    "series",
    "classic",
    "digital",
    "analysis",
    "report",
    "market",
    "design",
    "color",
    "black",
    "silver",
    "power",
    "compact",
    "city",
    "river",
    "north",
    "garden",
    "house",
    "music",
    "record",
    "album",
    "live",
    "night",
    "data",
    "query",
    "network",
    "learning",
    "journal",
    "conference",
    "street",
    "avenue",
    "grand",
    "royal",
    "premium",
    "edition",
    "standard",
    "special",
    "light",
    "heavy",
    "fresh",
    "golden",
    "united",
    "central",
    "pacific",
    "summer",
    "winter",
    "modern",
    "vintage",
    "original",
];

const CONNECTORS: &[&str] = &["the", "of", "and", "with", "for", "in", "a", "on", "by"];

fn phrase(rng: &mut Rng) -> Vec<String> {
    let len = 4 + rng.below(8);
    let mut words = Vec::with_capacity(len);
    for k in 0..len {
        if k % 3 == 2 {
            words.push((*rng.choose(CONNECTORS)).to_owned());
        } else {
            words.push((*rng.choose(TOPIC_WORDS)).to_owned());
        }
        // occasional alphanumeric model-number token
        if rng.chance(0.08) {
            words.push(format!(
                "{}{}{}",
                char::from(b'a' + rng.below(26) as u8),
                char::from(b'a' + rng.below(26) as u8),
                100 + rng.below(900)
            ));
        }
        // occasional price-like token
        if rng.chance(0.05) {
            words.push(format!("{}", 5 + rng.below(995)));
        }
    }
    words
}

/// Noisy copy of a phrase: token drops, replacements and duplications —
/// the same corruption family EM counterpart descriptions show.
fn noisy_copy(words: &[String], rng: &mut Rng) -> Vec<String> {
    let mut out = Vec::with_capacity(words.len());
    for w in words {
        if rng.chance(0.12) {
            continue; // dropped
        }
        if rng.chance(0.1) {
            out.push((*rng.choose(TOPIC_WORDS)).to_owned());
        } else {
            out.push(w.clone());
        }
    }
    if out.is_empty() {
        out.push(words[0].clone());
    }
    out
}

/// Generate `n_sentences` synthetic sentences (space-joined, normalized).
///
/// Half the sentences are **pair sentences**: a phrase, the literal `sep`
/// marker, and a noisy copy of the phrase. Web-scale corpora are full of
/// such repetition (quotes, boilerplate, titles), and it is what teaches a
/// masked-LM encoder to *copy across a separator* — the attention behaviour
/// that makes frozen transformer embeddings effective on coupled EM
/// sequences (Insight #3 of the paper).
pub fn generalist_corpus(n_sentences: usize, seed: u64) -> Vec<String> {
    let mut rng = Rng::new(seed ^ 0xC0DE);
    let mut out = Vec::with_capacity(n_sentences);
    for i in 0..n_sentences {
        let words = phrase(&mut rng);
        if i % 2 == 0 {
            out.push(words.join(" "));
        } else {
            let copy = noisy_copy(&words, &mut rng);
            out.push(format!("{} sep {}", words.join(" "), copy.join(" ")));
        }
    }
    out
}

/// Learn a subword tokenizer over a corpus (plus optional extra text such
/// as the target dataset's records — the embedders tokenize EM values with
/// the same vocabulary they were pretrained on).
pub fn build_tokenizer(corpus: &[String], extra: &[String], vocab_size: usize) -> SubwordTokenizer {
    let mut builder = SubwordVocabBuilder::new();
    for s in corpus.iter().chain(extra) {
        builder.feed_text(s);
    }
    SubwordTokenizer::new(builder.build(vocab_size))
}

/// One masked-LM training example: input ids with ~15% of positions
/// replaced by `[MASK]` (80%) / random token (10%) / kept (10%), plus the
/// original targets and the loss weights selecting the masked positions.
pub fn mask_tokens(ids: &[u32], vocab_len: usize, rng: &mut Rng) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let mut masked = ids.to_vec();
    let targets = ids.to_vec();
    let mut weights = vec![0.0f32; ids.len()];
    let mut any = false;
    for i in 0..ids.len() {
        if ids[i] < Vocab::SPECIALS.len() as u32 {
            continue; // never mask specials
        }
        if rng.chance(0.15) {
            weights[i] = 1.0;
            any = true;
            let roll = rng.f64();
            if roll < 0.8 {
                masked[i] = Vocab::MASK;
            } else if roll < 0.9 {
                masked[i] = Vocab::SPECIALS.len() as u32
                    + rng.below(vocab_len - Vocab::SPECIALS.len()) as u32;
            } // else keep
        }
    }
    if !any {
        // guarantee at least one prediction target per example
        if let Some(i) = ids.iter().position(|&t| t >= Vocab::SPECIALS.len() as u32) {
            weights[i] = 1.0;
            masked[i] = Vocab::MASK;
        }
    }
    (masked, targets, weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = generalist_corpus(50, 1);
        let b = generalist_corpus(50, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.iter().all(|s| !s.is_empty()));
        assert_ne!(a, generalist_corpus(50, 2));
    }

    #[test]
    fn tokenizer_covers_corpus() {
        let corpus = generalist_corpus(200, 3);
        let tok = build_tokenizer(&corpus, &[], 800);
        // every corpus sentence should tokenize without UNK
        for s in corpus.iter().take(50) {
            let pieces = tok.tokenize(s);
            assert!(!pieces.is_empty());
            assert!(
                pieces.iter().all(|p| p != "[UNK]"),
                "UNK in '{s}': {pieces:?}"
            );
        }
    }

    #[test]
    fn masking_statistics() {
        let corpus = generalist_corpus(100, 4);
        let tok = build_tokenizer(&corpus, &[], 800);
        let mut rng = linalg::Rng::new(5);
        let mut masked_total = 0usize;
        let mut token_total = 0usize;
        for s in &corpus {
            let ids = tok.encode(s);
            let (masked, targets, weights) = mask_tokens(&ids, tok.vocab().len(), &mut rng);
            assert_eq!(masked.len(), ids.len());
            assert_eq!(targets, ids);
            assert!(weights.iter().sum::<f32>() >= 1.0, "at least one target");
            masked_total += weights.iter().filter(|&&w| w > 0.0).count();
            token_total += ids.len();
        }
        let rate = masked_total as f64 / token_total as f64;
        assert!((0.08..0.25).contains(&rate), "mask rate {rate}");
    }

    #[test]
    fn masked_positions_prefer_mask_token() {
        let ids: Vec<u32> = (5..60).collect();
        let mut rng = linalg::Rng::new(6);
        let mut mask_count = 0;
        let mut changed = 0;
        for _ in 0..200 {
            let (masked, _, weights) = mask_tokens(&ids, 100, &mut rng);
            for i in 0..ids.len() {
                if weights[i] > 0.0 {
                    changed += 1;
                    if masked[i] == Vocab::MASK {
                        mask_count += 1;
                    }
                }
            }
        }
        let frac = mask_count as f64 / changed as f64;
        assert!((0.7..0.9).contains(&frac), "MASK fraction {frac}");
    }
}
