//! Memoized embedding of text sequences.
//!
//! EM datasets repeat attribute values heavily (the same venue string, the
//! same brand, near-duplicate titles appear in many pairs), so caching by
//! exact string removes a large share of the transformer forward passes
//! when embedding a full dataset.
//!
//! The cache is **sharded**: the key hash picks one of [`SHARDS`]
//! independently locked map segments, and the hit/miss statistics live in
//! per-shard atomics rather than behind any lock. That is what lets
//! [`EmbeddingCache::embed_batch`] fan a whole dataset's sequences across
//! the `par` worker pool without the workers serializing on a single map
//! mutex — or, worse, on a stats lock around every lookup.

use crate::SequenceEmbedder;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked cache segments. A power of two well
/// above any realistic worker count, so two workers rarely contend for
/// the same shard.
pub const SHARDS: usize = 16;

/// One cache segment: its own map lock plus its own stat atomics.
#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<String, Vec<f32>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    invalidations: AtomicUsize,
}

/// A caching wrapper around any [`SequenceEmbedder`].
///
/// Besides the per-instance counters returned by [`stats`](Self::stats),
/// every hit/miss is also published to the global `obs` metrics registry
/// (`embed.cache.hits` / `embed.cache.misses`), so the end-of-run summary
/// shows the process-wide cache effectiveness without any plumbing.
///
/// All methods take `&self` and the type is `Sync`: concurrent
/// [`embed`](Self::embed) calls from `par` workers are the intended use.
pub struct EmbeddingCache<'a> {
    inner: Backend<'a>,
    shards: Vec<Shard>,
    global_hits: &'static obs::Counter,
    global_misses: &'static obs::Counter,
    global_invalidations: &'static obs::Counter,
    global_rate: &'static obs::Gauge,
}

/// How the cache holds its embedder: borrowed for the scoped batch jobs
/// (the paper-table pipelines), shared (`Arc`) for long-running owners
/// like a serving process, where no enclosing scope outlives the cache.
enum Backend<'a> {
    Borrowed(&'a dyn SequenceEmbedder),
    Shared(Arc<dyn SequenceEmbedder + Send>),
}

impl Backend<'_> {
    fn get(&self) -> &dyn SequenceEmbedder {
        match self {
            Backend::Borrowed(e) => *e,
            Backend::Shared(e) => e.as_ref(),
        }
    }
}

/// Deterministic FNV-style hash used only for shard selection (never for
/// result-affecting decisions — a bad spread costs contention, not
/// correctness).
fn shard_of(key: &str) -> usize {
    let mut h = 0xcbf29ce484222325u64;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SHARDS as u64) as usize
}

impl<'a> EmbeddingCache<'a> {
    /// Wrap a borrowed embedder (the scoped pipeline paths).
    pub fn new(inner: &'a dyn SequenceEmbedder) -> Self {
        Self::with_backend(Backend::Borrowed(inner))
    }

    /// Wrap a shared (`Arc`-owned) embedder. The returned cache has no
    /// borrow, so a long-running owner — `em_core`'s `ModelHost`, the
    /// `em-serve` process — can hold cache and embedder together without
    /// an enclosing scope.
    pub fn shared(inner: Arc<dyn SequenceEmbedder + Send>) -> EmbeddingCache<'static> {
        EmbeddingCache::with_backend(Backend::Shared(inner))
    }

    fn with_backend(inner: Backend<'a>) -> EmbeddingCache<'a> {
        EmbeddingCache {
            inner,
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
            global_hits: obs::counter("embed.cache.hits"),
            global_misses: obs::counter("embed.cache.misses"),
            global_invalidations: obs::counter("embed.cache.invalidations"),
            global_rate: obs::gauge("embed.cache.hit_rate"),
        }
    }

    /// Pre-embed `texts` so later lookups hit. The cache never evicts, so
    /// warmed entries are effectively *pinned* for the cache's lifetime.
    /// Embedding fans out across the `par` pool like
    /// [`embed_batch`](Self::embed_batch); afterwards the per-instance
    /// hit/miss counters are reset so [`stats`](Self::stats) and
    /// [`hit_rate`](Self::hit_rate) describe post-warm traffic only.
    /// Returns the number of distinct sequences newly inserted.
    pub fn warm<S: AsRef<str> + Sync>(&self, texts: &[S]) -> usize {
        let _s = obs::span("embed.cache.warm");
        let before = self.len();
        let _ = self.embed_batch(texts);
        let added = self.len() - before;
        self.reset_stats();
        added
    }

    /// Zero the per-instance hit/miss counters (the process-wide `obs`
    /// counters are left alone). Used by [`warm`](Self::warm) and by
    /// serving code that wants stats scoped to live traffic.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.hits.store(0, Ordering::Relaxed);
            s.misses.store(0, Ordering::Relaxed);
        }
    }

    /// Recompute the process-wide hit-rate gauge from the global counters.
    fn publish_rate(&self) {
        let h = self.global_hits.get() as f64;
        let m = self.global_misses.get() as f64;
        if h + m > 0.0 {
            self.global_rate.set(h / (h + m));
        }
    }

    /// Embed through the cache.
    ///
    /// On a miss the shard lock is **released** while the wrapped embedder
    /// runs (the expensive part), so concurrent misses on the same shard
    /// still embed in parallel; two racing misses for the same key both
    /// compute and one insert wins — wasted work, never a wrong value,
    /// since embedders are pure functions of the string.
    pub fn embed(&self, textv: &str) -> Vec<f32> {
        let shard = &self.shards[shard_of(textv)];
        if let Some(v) = shard.map.lock().expect("cache shard").get(textv) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.global_hits.inc();
            self.publish_rate();
            return v.clone();
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.global_misses.inc();
        self.publish_rate();
        // the miss path is where embedding compute actually happens —
        // book it so the ledger separates cache misses from cache wins
        let _t = obs::ledger::phase("cache_miss");
        let v = self.inner.get().embed(textv);
        shard
            .map
            .lock()
            .expect("cache shard")
            .insert(textv.to_owned(), v.clone());
        v
    }

    /// Embed `textv` but memoize under the caller-chosen `key` instead of
    /// the text itself.
    ///
    /// This is the entry point for callers whose cache identity is a
    /// *mutable source* (e.g. the streaming layer's `rec:<side>:<id>`
    /// record vectors): the key stays fixed while the underlying text can
    /// change, so — unlike the content-keyed [`embed`](Self::embed) path,
    /// where a changed text simply misses — a stale vector **can** be
    /// served here unless the owner calls
    /// [`invalidate`](Self::invalidate) with the key whenever the source
    /// mutates. That pairing is the cache's invalidation protocol.
    pub fn embed_keyed(&self, key: &str, textv: &str) -> Vec<f32> {
        let shard = &self.shards[shard_of(key)];
        if let Some(v) = shard.map.lock().expect("cache shard").get(key) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            self.global_hits.inc();
            self.publish_rate();
            return v.clone();
        }
        shard.misses.fetch_add(1, Ordering::Relaxed);
        self.global_misses.inc();
        self.publish_rate();
        let _t = obs::ledger::phase("cache_miss");
        let v = self.inner.get().embed(textv);
        shard
            .map
            .lock()
            .expect("cache shard")
            .insert(key.to_owned(), v.clone());
        v
    }

    /// Embed a whole batch of sequences through the cache, fanning the
    /// work across the `par` pool. Output order matches input order and
    /// every vector equals what a sequential [`embed`](Self::embed) loop
    /// would produce — parallelism changes wall-clock only.
    pub fn embed_batch<S: AsRef<str> + Sync>(&self, texts: &[S]) -> Vec<Vec<f32>> {
        par::map(texts, |t| self.embed(t.as_ref()))
    }

    /// Drop `textv` from the cache. Returns `true` iff an entry was
    /// actually removed (and therefore counted).
    ///
    /// This is the streaming layer's **precise invalidation** hook: when
    /// a record is updated or deleted, every cached sequence derived from
    /// it must be dropped *before* the next lookup, so a stale vector can
    /// never be served for the new text. (Embedders are pure functions of
    /// the string, so invalidating a still-live key is wasted compute,
    /// never a wrong value — but the per-key accounting lets callers keep
    /// invalidation exact.) Removal holds only the one shard lock;
    /// concurrent `embed` calls on other shards are unaffected.
    pub fn invalidate(&self, textv: &str) -> bool {
        let shard = &self.shards[shard_of(textv)];
        let removed = shard
            .map
            .lock()
            .expect("cache shard")
            .remove(textv)
            .is_some();
        if removed {
            shard.invalidations.fetch_add(1, Ordering::Relaxed);
            self.global_invalidations.inc();
        }
        removed
    }

    /// Invalidate a batch of sequences; returns how many entries were
    /// actually removed.
    pub fn invalidate_batch<S: AsRef<str>>(&self, texts: &[S]) -> usize {
        texts.iter().filter(|t| self.invalidate(t.as_ref())).count()
    }

    /// Entries actually removed by [`invalidate`](Self::invalidate),
    /// summed over all shards. Unlike hits/misses this is **not** zeroed
    /// by [`reset_stats`](Self::reset_stats): invalidations account state
    /// changes, not traffic.
    pub fn invalidations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.invalidations.load(Ordering::Relaxed))
            .sum()
    }

    /// `(hits, misses)` counters, summed over all shards.
    pub fn stats(&self) -> (usize, usize) {
        let mut hits = 0;
        let mut misses = 0;
        for s in &self.shards {
            hits += s.hits.load(Ordering::Relaxed);
            misses += s.misses.load(Ordering::Relaxed);
        }
        (hits, misses)
    }

    /// Hits as a fraction of all lookups (`None` before the first lookup).
    pub fn hit_rate(&self) -> Option<f64> {
        let (h, m) = self.stats();
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Distinct sequences currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.map.lock().expect("cache shard").len())
            .sum()
    }

    /// True before anything was cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding width of the wrapped embedder.
    pub fn dim(&self) -> usize {
        self.inner.get().dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingEmbedder {
        calls: AtomicUsize,
    }

    impl CountingEmbedder {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl SequenceEmbedder for CountingEmbedder {
        fn dim(&self) -> usize {
            2
        }

        fn embed(&self, textv: &str) -> Vec<f32> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            vec![textv.len() as f32, 1.0]
        }

        fn name(&self) -> String {
            "counting".into()
        }
    }

    #[test]
    fn cache_deduplicates_calls() {
        let inner = CountingEmbedder::new();
        let cache = EmbeddingCache::new(&inner);
        let a1 = cache.embed("hello");
        let a2 = cache.embed("hello");
        let b = cache.embed("world!");
        assert_eq!(a1, a2);
        assert_eq!(b[0], 6.0);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
        assert_eq!(cache.stats(), (1, 2));
        assert!((cache.hit_rate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.dim(), 2);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn hit_rate_is_none_before_first_lookup() {
        let inner = CountingEmbedder::new();
        let cache = EmbeddingCache::new(&inner);
        assert_eq!(cache.hit_rate(), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let inner = CountingEmbedder::new();
        let cache = EmbeddingCache::new(&inner);
        let texts: Vec<String> = (0..200).map(|i| format!("value {}", i % 37)).collect();
        let sequential: Vec<Vec<f32>> = texts.iter().map(|t| cache.embed(t)).collect();

        let inner2 = CountingEmbedder::new();
        let cache2 = EmbeddingCache::new(&inner2);
        let batched = cache2.embed_batch(&texts);
        assert_eq!(sequential, batched);
        // only 37 distinct strings → at most 37 real embedder calls, even
        // though racing workers may each miss the same fresh key once
        assert_eq!(cache2.len(), 37);
        assert!(inner2.calls.load(Ordering::Relaxed) >= 37);
        let (h, m) = cache2.stats();
        assert_eq!(h + m, 200);
    }

    #[test]
    fn shared_cache_owns_embedder_and_warm_pins() {
        let cache = EmbeddingCache::shared(Arc::new(CountingEmbedder::new()));
        let texts = ["a", "bb", "a", "ccc"];
        let added = cache.warm(&texts);
        assert_eq!(added, 3);
        assert_eq!(cache.len(), 3);
        // warm reset the per-instance stats, so traffic starts clean…
        assert_eq!(cache.stats(), (0, 0));
        // …and everything warmed is a hit now
        let v = cache.embed("bb");
        assert_eq!(v[0], 2.0);
        assert_eq!(cache.stats(), (1, 0));
        assert_eq!(cache.hit_rate(), Some(1.0));
    }

    #[test]
    fn invalidate_drops_exactly_the_named_entry_and_accounts_it() {
        let inner = CountingEmbedder::new();
        let cache = EmbeddingCache::new(&inner);
        let _ = cache.embed("alpha");
        let _ = cache.embed("beta");
        assert_eq!(cache.len(), 2);

        assert!(cache.invalidate("alpha"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.invalidations(), 1);
        // invalidating a missing key is a no-op and is not counted
        assert!(!cache.invalidate("alpha"));
        assert!(!cache.invalidate("never cached"));
        assert_eq!(cache.invalidations(), 1);

        // the next embed for the dropped key is a real recompute…
        let calls_before = inner.calls.load(Ordering::Relaxed);
        let _ = cache.embed("alpha");
        assert_eq!(inner.calls.load(Ordering::Relaxed), calls_before + 1);
        // …while the untouched key still hits
        let (h0, _) = cache.stats();
        let _ = cache.embed("beta");
        assert_eq!(cache.stats().0, h0 + 1);

        assert_eq!(cache.invalidate_batch(&["alpha", "beta", "gamma"]), 2);
        assert_eq!(cache.invalidations(), 3);
        assert!(cache.is_empty());
        // reset_stats zeroes traffic counters but not invalidations
        cache.reset_stats();
        assert_eq!(cache.stats(), (0, 0));
        assert_eq!(cache.invalidations(), 3);
    }

    #[test]
    fn keyed_embeds_serve_by_key_until_invalidated() {
        let inner = CountingEmbedder::new();
        let cache = EmbeddingCache::new(&inner);
        let v1 = cache.embed_keyed("rec:left:7", "old text");
        // same key, *different* text: without invalidation the cached
        // (now stale w.r.t. the text) vector is served — by design
        let v2 = cache.embed_keyed("rec:left:7", "completely different");
        assert_eq!(v1, v2);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 1);
        // invalidation is what restores freshness
        assert!(cache.invalidate("rec:left:7"));
        let v3 = cache.embed_keyed("rec:left:7", "completely different");
        assert_ne!(v1, v3);
        assert_eq!(inner.calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_embeds_keep_stats_consistent() {
        let inner = CountingEmbedder::new();
        let cache = EmbeddingCache::new(&inner);
        std::thread::scope(|s| {
            for t in 0..8 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..100 {
                        let _ = cache.embed(&format!("k{}", (t * 100 + i) % 13));
                    }
                });
            }
        });
        let (h, m) = cache.stats();
        assert_eq!(h + m, 800);
        assert_eq!(cache.len(), 13);
    }
}
