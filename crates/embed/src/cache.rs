//! Memoized embedding of text sequences.
//!
//! EM datasets repeat attribute values heavily (the same venue string, the
//! same brand, near-duplicate titles appear in many pairs), so caching by
//! exact string removes a large share of the transformer forward passes
//! when embedding a full dataset.

use crate::SequenceEmbedder;
use std::cell::RefCell;
use std::collections::HashMap;

/// A caching wrapper around any [`SequenceEmbedder`].
///
/// Besides the per-instance counters returned by [`stats`](Self::stats),
/// every hit/miss is also published to the global `obs` metrics registry
/// (`embed.cache.hits` / `embed.cache.misses`), so the end-of-run summary
/// shows the process-wide cache effectiveness without any plumbing.
pub struct EmbeddingCache<'a> {
    inner: &'a dyn SequenceEmbedder,
    cache: RefCell<HashMap<String, Vec<f32>>>,
    hits: RefCell<usize>,
    misses: RefCell<usize>,
    global_hits: &'static obs::Counter,
    global_misses: &'static obs::Counter,
    global_rate: &'static obs::Gauge,
}

impl<'a> EmbeddingCache<'a> {
    /// Wrap an embedder.
    pub fn new(inner: &'a dyn SequenceEmbedder) -> Self {
        Self {
            inner,
            cache: RefCell::new(HashMap::new()),
            hits: RefCell::new(0),
            misses: RefCell::new(0),
            global_hits: obs::counter("embed.cache.hits"),
            global_misses: obs::counter("embed.cache.misses"),
            global_rate: obs::gauge("embed.cache.hit_rate"),
        }
    }

    /// Recompute the process-wide hit-rate gauge from the global counters.
    fn publish_rate(&self) {
        let h = self.global_hits.get() as f64;
        let m = self.global_misses.get() as f64;
        if h + m > 0.0 {
            self.global_rate.set(h / (h + m));
        }
    }

    /// Embed through the cache.
    pub fn embed(&self, textv: &str) -> Vec<f32> {
        if let Some(v) = self.cache.borrow().get(textv) {
            *self.hits.borrow_mut() += 1;
            self.global_hits.inc();
            self.publish_rate();
            return v.clone();
        }
        *self.misses.borrow_mut() += 1;
        self.global_misses.inc();
        self.publish_rate();
        let v = self.inner.embed(textv);
        self.cache.borrow_mut().insert(textv.to_owned(), v.clone());
        v
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (usize, usize) {
        (*self.hits.borrow(), *self.misses.borrow())
    }

    /// Hits as a fraction of all lookups (`None` before the first lookup).
    pub fn hit_rate(&self) -> Option<f64> {
        let (h, m) = self.stats();
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Embedding width of the wrapped embedder.
    pub fn dim(&self) -> usize {
        self.inner.dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingEmbedder {
        calls: RefCell<usize>,
    }

    impl SequenceEmbedder for CountingEmbedder {
        fn dim(&self) -> usize {
            2
        }

        fn embed(&self, textv: &str) -> Vec<f32> {
            *self.calls.borrow_mut() += 1;
            vec![textv.len() as f32, 1.0]
        }

        fn name(&self) -> String {
            "counting".into()
        }
    }

    #[test]
    fn cache_deduplicates_calls() {
        let inner = CountingEmbedder {
            calls: RefCell::new(0),
        };
        let cache = EmbeddingCache::new(&inner);
        let a1 = cache.embed("hello");
        let a2 = cache.embed("hello");
        let b = cache.embed("world!");
        assert_eq!(a1, a2);
        assert_eq!(b[0], 6.0);
        assert_eq!(*inner.calls.borrow(), 2);
        assert_eq!(cache.stats(), (1, 2));
        assert!((cache.hit_rate().unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(cache.dim(), 2);
    }

    #[test]
    fn hit_rate_is_none_before_first_lookup() {
        let inner = CountingEmbedder {
            calls: RefCell::new(0),
        };
        let cache = EmbeddingCache::new(&inner);
        assert_eq!(cache.hit_rate(), None);
    }
}
