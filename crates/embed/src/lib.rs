//! # embed — text-to-vector embedders
//!
//! Two embedder classes back the reproduction:
//!
//! * [`word2vec`] — skip-gram-with-negative-sampling word vectors, used by
//!   the *raw-AutoML* baseline path: the paper preprocesses AutoSklearn's
//!   categorical columns with "a standard Word2Vec embedding, … the average
//!   Word2Vec embedding for each token … concatenated" (§5.1).
//! * [`families`] — five small transformer encoders standing in for the
//!   pretrained checkpoints the *EM adapter* uses (BERT, DistilBERT,
//!   ALBERT, RoBERTa, XLNet). Each family keeps its distinguishing
//!   architecture trait and is **pretrained with a masked-token objective**
//!   on the synthetic generalist corpus of [`pretrain`], then frozen —
//!   mirroring the paper's out-of-the-box use ("no fine-tuning technique
//!   was applied").
//!
//! [`cache::EmbeddingCache`] memoizes sequence embeddings; EM datasets
//! repeat attribute values heavily, so the cache removes most transformer
//! forward passes when embedding a full dataset.

#![warn(missing_docs)]

pub mod cache;
pub mod families;
pub mod hashing;
pub mod local;
pub mod pretrain;
pub mod word2vec;

pub use families::{EmbedderFamily, PretrainedTransformer};
pub use hashing::HashingEmbedder;
pub use local::LocalEmbedder;
pub use word2vec::Word2Vec;

/// A frozen text-sequence embedder: token sequence in, fixed-width vector
/// out. Implemented by the transformer families and by word2vec.
///
/// `Sync` is a supertrait because embedders are shared by reference across
/// the `par` worker pool during batch encoding
/// ([`cache::EmbeddingCache::embed_batch`]); every implementation is a
/// frozen (immutable) model, so the bound costs nothing.
pub trait SequenceEmbedder: Sync {
    /// Embedding width.
    fn dim(&self) -> usize;

    /// Embed one (already normalized) text string.
    fn embed(&self, text: &str) -> Vec<f32>;

    /// Short name for reports ("Bert", "w2v", …).
    fn name(&self) -> String;
}
