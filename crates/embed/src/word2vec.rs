//! Skip-gram word2vec with negative sampling (Mikolov et al.), from
//! scratch.
//!
//! Trains directly on a token corpus; used to turn categorical/text columns
//! into dense features for the raw-AutoML baseline (Table 2) exactly as the
//! paper describes: per-token vectors averaged per field, fields
//! concatenated.

use crate::SequenceEmbedder;
use linalg::vector::sigmoid;
use linalg::Rng;
use std::collections::HashMap;

/// Word2Vec hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct W2vConfig {
    /// Vector width.
    pub dim: usize,
    /// Context window radius.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate (linearly decayed).
    pub lr: f32,
    /// Minimum token count to enter the vocabulary.
    pub min_count: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for W2vConfig {
    fn default() -> Self {
        Self {
            dim: 48,
            window: 3,
            negatives: 5,
            epochs: 3,
            lr: 0.05,
            min_count: 1,
            seed: 0,
        }
    }
}

/// Trained skip-gram model.
pub struct Word2Vec {
    config: W2vConfig,
    vocab: HashMap<String, usize>,
    // input vectors, row per word
    vectors: Vec<Vec<f32>>,
}

impl Word2Vec {
    /// Train on a corpus of token sentences.
    pub fn train(sentences: &[Vec<String>], config: W2vConfig) -> Self {
        let mut rng = Rng::new(config.seed ^ 0x3757);
        // vocabulary + unigram counts
        let mut counts: HashMap<String, u64> = HashMap::new();
        for s in sentences {
            for t in s {
                *counts.entry(t.clone()).or_insert(0) += 1;
            }
        }
        let mut words: Vec<(String, u64)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= config.min_count)
            .collect();
        words.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let vocab: HashMap<String, usize> = words
            .iter()
            .enumerate()
            .map(|(i, (w, _))| (w.clone(), i))
            .collect();
        let v = vocab.len().max(1);

        // noise distribution ∝ count^0.75
        let noise_weights: Vec<f64> = words.iter().map(|(_, c)| (*c as f64).powf(0.75)).collect();

        // init: input vectors uniform small, output vectors zero
        let mut input: Vec<Vec<f32>> = (0..v)
            .map(|_| {
                (0..config.dim)
                    .map(|_| (rng.f32() - 0.5) / config.dim as f32)
                    .collect()
            })
            .collect();
        let mut output: Vec<Vec<f32>> = vec![vec![0.0; config.dim]; v];

        // encode corpus
        let encoded: Vec<Vec<usize>> = sentences
            .iter()
            .map(|s| s.iter().filter_map(|t| vocab.get(t).copied()).collect())
            .collect();
        let total_steps: u64 =
            (config.epochs * encoded.iter().map(Vec::len).sum::<usize>().max(1)) as u64;
        let mut step: u64 = 0;
        for _ in 0..config.epochs {
            for sent in &encoded {
                for (center_pos, &center) in sent.iter().enumerate() {
                    step += 1;
                    let lr = config.lr * (1.0 - step as f32 / (total_steps + 1) as f32).max(0.05);
                    let w = 1 + rng.below(config.window);
                    let lo = center_pos.saturating_sub(w);
                    let hi = (center_pos + w + 1).min(sent.len());
                    for (ctx_pos, &context) in sent.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == center_pos {
                            continue;
                        }
                        // positive + negatives
                        let mut grad_in = vec![0.0f32; config.dim];
                        for k in 0..=config.negatives {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (rng.weighted(&noise_weights), 0.0)
                            };
                            if label == 0.0 && target == context {
                                continue;
                            }
                            let dot = linalg::vector::dot(&input[center], &output[target]);
                            let err = (sigmoid(dot) - label) * lr;
                            for d in 0..config.dim {
                                grad_in[d] += err * output[target][d];
                                output[target][d] -= err * input[center][d];
                            }
                        }
                        for d in 0..config.dim {
                            input[center][d] -= grad_in[d];
                        }
                    }
                }
            }
        }
        Self {
            config,
            vocab,
            vectors: input,
        }
    }

    /// Vector of one token (`None` for out-of-vocabulary words).
    pub fn vector(&self, token: &str) -> Option<&[f32]> {
        self.vocab.get(token).map(|&i| self.vectors[i].as_slice())
    }

    /// Average vector of a token sequence (zeros when nothing is known —
    /// the paper's per-field treatment).
    pub fn average(&self, tokens: &[String]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.config.dim];
        let mut n = 0usize;
        for t in tokens {
            if let Some(v) = self.vector(t) {
                linalg::vector::axpy(1.0, v, &mut out);
                n += 1;
            }
        }
        if n > 0 {
            linalg::vector::scale(&mut out, 1.0 / n as f32);
        }
        out
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }
}

impl SequenceEmbedder for Word2Vec {
    fn dim(&self) -> usize {
        self.config.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let tokens = text::tokenize::words(text);
        self.average(&tokens)
    }

    fn name(&self) -> String {
        format!("w2v(d={})", self.config.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::vector::cosine;

    /// Corpus where "cat"/"dog" share contexts and "stone" does not.
    fn corpus(n: usize, seed: u64) -> Vec<Vec<String>> {
        let mut rng = Rng::new(seed);
        let mut out = Vec::new();
        for _ in 0..n {
            let animal = if rng.chance(0.5) { "cat" } else { "dog" };
            out.push(
                ["the", animal, "chased", "the", "ball", "today"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
            out.push(
                ["a", "stone", "lay", "on", "gravel", "path"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
            );
        }
        out
    }

    #[test]
    fn similar_contexts_give_similar_vectors() {
        let model = Word2Vec::train(
            &corpus(300, 1),
            W2vConfig {
                dim: 24,
                epochs: 4,
                ..W2vConfig::default()
            },
        );
        let cat = model.vector("cat").unwrap();
        let dog = model.vector("dog").unwrap();
        let stone = model.vector("stone").unwrap();
        let sim_cd = cosine(cat, dog);
        let sim_cs = cosine(cat, stone);
        assert!(
            sim_cd > sim_cs + 0.2,
            "cat~dog {sim_cd}, cat~stone {sim_cs}"
        );
    }

    #[test]
    fn oov_and_averaging() {
        let model = Word2Vec::train(&corpus(20, 2), W2vConfig::default());
        assert!(model.vector("zebra").is_none());
        let avg = model.average(&["zebra".into()]);
        assert!(avg.iter().all(|&v| v == 0.0));
        let avg2 = model.average(&["cat".into(), "zebra".into()]);
        assert_eq!(avg2, model.vector("cat").unwrap().to_vec());
    }

    #[test]
    fn embedder_trait_roundtrip() {
        let model = Word2Vec::train(&corpus(20, 3), W2vConfig::default());
        // "zebra" is OOV, so only "cat" contributes (normalization folds case)
        let e = model.embed("CAT zebra!");
        assert_eq!(e.len(), model.dim());
        assert_eq!(e, model.vector("cat").unwrap().to_vec());
    }

    #[test]
    fn min_count_filters_rare_words() {
        let sentences = vec![
            vec!["common".to_string(), "common".into(), "rare".into()],
            vec!["common".to_string(), "common".into()],
        ];
        let model = Word2Vec::train(
            &sentences,
            W2vConfig {
                min_count: 2,
                ..W2vConfig::default()
            },
        );
        assert!(model.vector("common").is_some());
        assert!(model.vector("rare").is_none());
    }

    #[test]
    fn deterministic() {
        let c = corpus(30, 4);
        let cfg = W2vConfig {
            dim: 16,
            epochs: 2,
            ..W2vConfig::default()
        };
        let a = Word2Vec::train(&c, cfg);
        let b = Word2Vec::train(&c, cfg);
        assert_eq!(a.vector("cat"), b.vector("cat"));
    }
}
