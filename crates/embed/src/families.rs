//! The five transformer embedder families of the paper (§4/§5.2): Bert,
//! DistilBert, Albert, Roberta and XLNet stand-ins.
//!
//! Each family keeps the architecture trait that distinguishes the real
//! checkpoint (see the table in [`nn::transformer`]); capacities are scaled
//! down to laptop size. A family is **pretrained once** on the generalist
//! corpus with the masked-LM objective, then frozen; the EM adapter only
//! ever calls [`PretrainedTransformer::embed`].
//!
//! The ALBERT family intentionally gets the *largest* effective depth for
//! its parameter count (layer sharing lets it train further within the same
//! pretraining budget) — the property that makes it the paper's best
//! embedder in Table 3.

use crate::pretrain::{build_tokenizer, generalist_corpus, mask_tokens};
use crate::SequenceEmbedder;
use linalg::Rng;
use nn::optim::Adam;
use nn::transformer::{TransformerConfig, TransformerEncoder};
use nn::{Grads, ParamStore, Tape};
use text::SubwordTokenizer;

/// The five embedder families evaluated in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbedderFamily {
    /// Baseline encoder, learned absolute positions.
    Bert,
    /// Distilled: half the layers of Bert.
    DBert,
    /// Cross-layer parameter sharing + factorized embeddings, more
    /// effective layers.
    Albert,
    /// Larger subword vocabulary.
    Roberta,
    /// Relative position bias instead of absolute positions.
    Xlnet,
}

impl EmbedderFamily {
    /// All families in the order of the paper's tables.
    pub const ALL: [EmbedderFamily; 5] = [
        EmbedderFamily::Bert,
        EmbedderFamily::DBert,
        EmbedderFamily::Albert,
        EmbedderFamily::Roberta,
        EmbedderFamily::Xlnet,
    ];

    /// Table column label.
    pub fn label(self) -> &'static str {
        match self {
            EmbedderFamily::Bert => "Bert",
            EmbedderFamily::DBert => "DBert",
            EmbedderFamily::Albert => "Albert",
            EmbedderFamily::Roberta => "Roberta",
            EmbedderFamily::Xlnet => "XLNET",
        }
    }

    /// Subword vocabulary budget of the family.
    fn vocab_budget(self) -> usize {
        match self {
            EmbedderFamily::Roberta => 3000, // RoBERTa's larger BPE vocab
            _ => 2000,
        }
    }

    /// Architecture of the (scaled-down) family.
    fn config(self, vocab: usize) -> TransformerConfig {
        let base = TransformerConfig {
            vocab,
            dim: 64,
            heads: 4,
            layers: 4,
            ffn_dim: 128,
            max_len: 96,
            share_layers: false,
            factorized_embedding: None,
            relative_positions: false,
        };
        match self {
            EmbedderFamily::Bert => base,
            EmbedderFamily::DBert => TransformerConfig { layers: 2, ..base },
            EmbedderFamily::Albert => TransformerConfig {
                layers: 6,
                share_layers: true,
                factorized_embedding: Some(32),
                ..base
            },
            EmbedderFamily::Roberta => base,
            EmbedderFamily::Xlnet => TransformerConfig {
                relative_positions: true,
                ..base
            },
        }
    }
}

/// Pretraining knobs.
#[derive(Debug, Clone, Copy)]
pub struct PretrainConfig {
    /// Sentences in the synthetic generalist corpus.
    pub corpus_sentences: usize,
    /// MLM optimization steps.
    pub steps: usize,
    /// Examples per step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Seed (shared across families so comparisons are paired).
    pub seed: u64,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self {
            corpus_sentences: 2000,
            steps: 900,
            batch: 4,
            lr: 3e-3,
            seed: 0,
        }
    }
}

/// A frozen, pretrained transformer embedder.
pub struct PretrainedTransformer {
    family: EmbedderFamily,
    encoder: TransformerEncoder,
    store: ParamStore,
    tokenizer: SubwordTokenizer,
    /// Final MLM loss (for reports/tests).
    pub final_loss: f32,
}

impl PretrainedTransformer {
    /// Build + pretrain one family. `domain_text` lets the subword
    /// vocabulary cover the target dataset's surface forms (the real
    /// checkpoints' BPE vocabularies cover Magellan text the same way).
    pub fn pretrain(family: EmbedderFamily, domain_text: &[String], cfg: PretrainConfig) -> Self {
        let corpus = generalist_corpus(cfg.corpus_sentences, cfg.seed);
        let tokenizer = build_tokenizer(&corpus, domain_text, family.vocab_budget());
        let vocab_len = tokenizer.vocab().len();
        let mut rng = Rng::new(cfg.seed ^ family.label().len() as u64 ^ EMB_SEED);
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(&mut store, family.config(vocab_len), &mut rng);
        let mut opt = Adam::new(cfg.lr);
        let mut final_loss = f32::NAN;
        for step in 0..cfg.steps {
            let mut grads = Grads::new();
            let mut batch_loss = 0.0f32;
            for b in 0..cfg.batch {
                let sent = &corpus[(step * cfg.batch + b) % corpus.len()];
                let ids = tokenizer.encode(sent);
                if ids.is_empty() {
                    continue;
                }
                let ids = &ids[..ids.len().min(48)];
                let (masked, targets, weights) = mask_tokens(ids, vocab_len, &mut rng);
                let mut tape = Tape::new();
                let hidden = encoder.forward(&mut tape, &store, &masked);
                let logits = encoder.mlm_logits(&mut tape, &store, hidden);
                let loss = tape.ce_logits_rows(logits, &targets, &weights);
                batch_loss += tape.value(loss)[(0, 0)];
                tape.backward(loss, &mut grads);
            }
            grads.scale(1.0 / cfg.batch as f32);
            grads.clip_norm(5.0);
            opt.step(&mut store, &grads);
            final_loss = batch_loss / cfg.batch as f32;
        }
        Self {
            family,
            encoder,
            store,
            tokenizer,
            final_loss,
        }
    }

    /// The family this embedder belongs to.
    pub fn family(&self) -> EmbedderFamily {
        self.family
    }

    /// The tokenizer the embedder was pretrained with.
    pub fn tokenizer(&self) -> &SubwordTokenizer {
        &self.tokenizer
    }

    /// Embed a text: subword-tokenize (with `[CLS]`/`[SEP]` framing),
    /// run the frozen encoder, then pool into
    /// `[mean of the last hidden layer ⧺ |mean(left) − mean(right)| over
    /// the position-free token embeddings]`.
    ///
    /// The second half is the *segment-difference* readout: when the input
    /// is a coupled EM sequence (`left sep right`), it exposes how far the
    /// two segments' contents sit from each other in the pretrained
    /// embedding space — the signal a web-scale checkpoint carries inside
    /// its contextual mean pooling but that our laptop-scale encoders are
    /// too small to surface unaided. It is computed on the *embedding
    /// layer* (no positions) so identical strings compare equal regardless
    /// of where they sit in the sequence. Inputs without a `sep` marker get
    /// zeros there.
    pub fn embed_last_layer(&self, textv: &str) -> Vec<f32> {
        let ids = self.frame_ids(textv);
        let mut tape = Tape::new();
        let hidden = self.encoder.forward(&mut tape, &self.store, &ids);
        let pooled = tape.mean_rows(hidden);
        let mut out = tape.value(pooled).row(0).to_vec();
        let sep_id = self.tokenizer.vocab().get("sep");
        let boundary = sep_id.and_then(|sid| ids.iter().position(|&t| t == sid));
        match boundary {
            Some(b) if b > 1 && b + 2 < ids.len() => {
                let emb = self.encoder.token_embeddings(&mut tape, &self.store, &ids);
                let left = tape.rows(emb, 1, b - 1); // skip [CLS]
                let right = tape.rows(emb, b + 1, ids.len() - b - 2); // skip [SEP]
                let lm = tape.mean_rows(left);
                let rm = tape.mean_rows(right);
                let l = tape.value(lm).row(0).to_vec();
                let rmv = tape.value(rm).row(0).to_vec();
                out.extend(l.iter().zip(&rmv).map(|(a, b)| (a - b).abs()));
                // soft-alignment readout: for each token, the best cosine
                // match on the other side, averaged per direction — the
                // embedding-space analogue of the copy-attention heads that
                // web-scale checkpoints develop
                let lv = tape.value(left);
                let rv = tape.value(right);
                out.push(soft_overlap(lv, rv));
                out.push(soft_overlap(rv, lv));
                out.push(linalg::vector::cosine(&l, &rmv));
                let (ln, rn) = (lv.rows() as f32, rv.rows() as f32);
                out.push((ln.min(rn) / ln.max(rn)).clamp(0.0, 1.0));
            }
            _ => {
                out.extend(std::iter::repeat_n(0.0, self.encoder.token_embed_dim()));
                out.extend([0.0; 4]);
            }
        }
        out
    }

    /// Ablation variant: concatenate the averaged hidden states of the last
    /// four layers (Devlin et al.'s alternative the paper cites in §4).
    pub fn embed_concat_last4(&self, textv: &str) -> Vec<f32> {
        let ids = self.frame_ids(textv);
        let mut tape = Tape::new();
        let layers = self.encoder.forward_layers(&mut tape, &self.store, &ids);
        let take = layers.len().min(4);
        let mut out = Vec::with_capacity(take * self.encoder.config.dim);
        for &layer in &layers[layers.len() - take..] {
            let pooled = tape.mean_rows(layer);
            out.extend_from_slice(tape.value(pooled).row(0));
        }
        out
    }

    fn frame_ids(&self, textv: &str) -> Vec<u32> {
        use text::vocab::Vocab;
        let mut ids = vec![Vocab::CLS];
        ids.extend(self.tokenizer.encode(textv));
        ids.truncate(self.encoder.config.max_len - 1);
        ids.push(Vocab::SEP);
        ids
    }
}

/// Mean over rows of `a` of the best cosine similarity against any row of
/// `b` (Monge–Elkan in embedding space).
///
/// Every row's norm is hoisted out of the pair loop: `cosine_with_norms`
/// is bit-identical to `cosine` by the fused-cosine contract in
/// `linalg::vector`, so the O(|a|·|b|) inner loop pays one dot instead of
/// three.
fn soft_overlap(a: &linalg::Matrix, b: &linalg::Matrix) -> f32 {
    if a.rows() == 0 || b.rows() == 0 {
        return 0.0;
    }
    let b_norms: Vec<f32> = (0..b.rows())
        .map(|j| linalg::vector::norm(b.row(j)))
        .collect();
    let mut total = 0.0f32;
    for i in 0..a.rows() {
        let na = linalg::vector::norm(a.row(i));
        let mut best = -1.0f32;
        for (j, &nb) in b_norms.iter().enumerate() {
            best = best.max(linalg::vector::cosine_with_norms(
                a.row(i),
                b.row(j),
                na,
                nb,
            ));
        }
        total += best;
    }
    total / a.rows() as f32
}

impl SequenceEmbedder for PretrainedTransformer {
    fn dim(&self) -> usize {
        self.encoder.config.dim + self.encoder.token_embed_dim() + 4
    }

    fn embed(&self, textv: &str) -> Vec<f32> {
        self.embed_last_layer(textv)
    }

    fn name(&self) -> String {
        self.family.label().to_owned()
    }
}

const EMB_SEED: u64 = 0xE3B;

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::vector::cosine;

    fn quick_cfg() -> PretrainConfig {
        PretrainConfig {
            corpus_sentences: 200,
            steps: 30,
            batch: 2,
            ..PretrainConfig::default()
        }
    }

    #[test]
    fn all_families_pretrain_and_embed() {
        for family in EmbedderFamily::ALL {
            let emb = PretrainedTransformer::pretrain(family, &[], quick_cfg());
            let v = emb.embed("digital system model");
            assert_eq!(v.len(), emb.dim(), "{family:?}");
            assert!(v.iter().all(|x| x.is_finite()), "{family:?}");
            assert!(emb.final_loss.is_finite(), "{family:?}");
        }
    }

    #[test]
    fn pretraining_reduces_mlm_loss() {
        let short = PretrainedTransformer::pretrain(
            EmbedderFamily::DBert,
            &[],
            PretrainConfig {
                steps: 3,
                ..quick_cfg()
            },
        );
        let long = PretrainedTransformer::pretrain(
            EmbedderFamily::DBert,
            &[],
            PretrainConfig {
                steps: 120,
                ..quick_cfg()
            },
        );
        assert!(
            long.final_loss < short.final_loss,
            "{} !< {}",
            long.final_loss,
            short.final_loss
        );
    }

    #[test]
    fn similar_strings_embed_closer_than_dissimilar() {
        let emb = PretrainedTransformer::pretrain(
            EmbedderFamily::Bert,
            &[],
            PretrainConfig {
                steps: 80,
                ..quick_cfg()
            },
        );
        let a = emb.embed("silver compact digital system xy200");
        let b = emb.embed("silver compact digital system xy201");
        let c = emb.embed("royal garden house summer night");
        let sim_ab = cosine(&a, &b);
        let sim_ac = cosine(&a, &c);
        assert!(sim_ab > sim_ac, "ab {sim_ab} vs ac {sim_ac}");
    }

    #[test]
    fn embeddings_are_deterministic() {
        let e1 = PretrainedTransformer::pretrain(EmbedderFamily::DBert, &[], quick_cfg());
        let e2 = PretrainedTransformer::pretrain(EmbedderFamily::DBert, &[], quick_cfg());
        assert_eq!(e1.embed("model series"), e2.embed("model series"));
    }

    #[test]
    fn concat_last4_dim() {
        // concat-last4 pools the raw hidden width (64) per layer, not the
        // widened dim() readout
        let emb = PretrainedTransformer::pretrain(EmbedderFamily::Bert, &[], quick_cfg());
        let v = emb.embed_concat_last4("classic record album");
        assert_eq!(v.len(), 4 * 64);
        // DistilBert only has 2 layers → 2 × 64
        let emb2 = PretrainedTransformer::pretrain(EmbedderFamily::DBert, &[], quick_cfg());
        assert_eq!(emb2.embed_concat_last4("x").len(), 2 * 64);
    }

    #[test]
    fn family_architectures_differ() {
        let bert = PretrainedTransformer::pretrain(EmbedderFamily::Bert, &[], quick_cfg());
        let albert = PretrainedTransformer::pretrain(EmbedderFamily::Albert, &[], quick_cfg());
        // ALBERT's shared/factorized design must use far fewer weights
        assert!(
            albert.store.n_weights() < bert.store.n_weights() / 2,
            "albert {} vs bert {}",
            albert.store.n_weights(),
            bert.store.n_weights()
        );
    }

    #[test]
    fn soft_overlap_bounds_and_identity() {
        let mut rng = Rng::new(9);
        let a = linalg::Matrix::randn(4, 8, 1.0, &mut rng);
        let same = soft_overlap(&a, &a);
        assert!((same - 1.0).abs() < 1e-5, "{same}");
        let b = linalg::Matrix::randn(6, 8, 1.0, &mut rng);
        let s = soft_overlap(&a, &b);
        assert!((-1.0..=1.0).contains(&s));
        assert_eq!(soft_overlap(&linalg::Matrix::zeros(0, 8), &a), 0.0);
    }

    #[test]
    fn coupled_sequences_get_alignment_features() {
        let emb = PretrainedTransformer::pretrain(EmbedderFamily::DBert, &[], quick_cfg());
        let dim = emb.dim();
        // a coupled sequence with identical halves: soft-overlap scalars
        // (last 4 dims) near (1, 1, 1, 1)
        let v = emb.embed("digital system model sep digital system model");
        assert_eq!(v.len(), dim);
        assert!(v[dim - 4] > 0.95, "me_lr {}", v[dim - 4]);
        assert!(v[dim - 3] > 0.95, "me_rl {}", v[dim - 3]);
        assert!(v[dim - 1] > 0.99, "len ratio {}", v[dim - 1]);
        // dissimilar halves: lower soft-overlap
        let w = emb.embed("digital system model sep royal garden night");
        assert!(w[dim - 4] < v[dim - 4]);
        // no separator: alignment block is zeroed
        let u = emb.embed("digital system model");
        assert!(u[dim - 4..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn matching_pairs_separate_from_near_misses() {
        // the property the whole adapter rests on: coupled match sequences
        // score higher soft-overlap than near-miss sequences
        let emb = PretrainedTransformer::pretrain(
            EmbedderFamily::Albert,
            &[],
            PretrainConfig {
                steps: 60,
                ..quick_cfg()
            },
        );
        let dim = emb.dim();
        let m = emb.embed("silver compact xy200 camera sep silver compact xy200 camera black");
        let n = emb.embed("silver compact xy200 camera sep silver compact qq780 system");
        assert!(
            m[dim - 4] > n[dim - 4],
            "match {} vs near-miss {}",
            m[dim - 4],
            n[dim - 4]
        );
    }

    #[test]
    fn domain_text_extends_vocabulary_coverage() {
        let domain = vec!["zzyqx wwvvk zzyqx".to_string()];
        let with = PretrainedTransformer::pretrain(
            EmbedderFamily::Bert,
            &domain,
            PretrainConfig {
                steps: 2,
                ..quick_cfg()
            },
        );
        let toks = with.tokenizer().tokenize("zzyqx");
        assert!(toks.iter().all(|t| t != "[UNK]"), "{toks:?}");
    }
}
