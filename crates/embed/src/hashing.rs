//! A training-free hashed bag-of-words embedder.
//!
//! The transformer families need a pretraining pass and the local
//! word2vec needs the target corpus; both are overkill when a pipeline
//! just needs *a* deterministic, similarity-preserving embedder that
//! exists instantly — CI smoke jobs, serving fixtures, load generators.
//! [`HashingEmbedder`] fills that slot: each side of a coupled
//! `left sep right` sequence is hashed into a fixed-width bag-of-words
//! histogram and the output is the concatenation of the sides' **sum**
//! and **absolute difference** — a crude relational readout in the same
//! spirit as the transformer families' coupled-pair features, at zero
//! training cost. Identical strings embed identically by construction,
//! so the [`crate::cache::EmbeddingCache`] memoization applies as usual.

use crate::SequenceEmbedder;

/// Hashed bag-of-words over a coupled `left sep right` sequence.
///
/// Output layout (width [`dim`](SequenceEmbedder::dim) = `2 × half`):
/// `(l + r) ⧺ |l − r|` where `l`, `r` are the L2-normalized per-side
/// histograms. Without a `sep` marker the whole string is treated as the
/// left side (`r = 0`).
pub struct HashingEmbedder {
    half: usize,
}

impl HashingEmbedder {
    /// New embedder with output width `dim` (must be even and non-zero;
    /// each side hashes into `dim / 2` buckets).
    pub fn new(dim: usize) -> Self {
        assert!(
            dim >= 2 && dim.is_multiple_of(2),
            "dim must be even and >= 2"
        );
        Self { half: dim / 2 }
    }

    fn hash_bow(&self, text: &str) -> Vec<f32> {
        let mut out = vec![0.0f32; self.half];
        for tok in text.split_whitespace() {
            let h = linalg::SplitMix64::mix(
                tok.bytes()
                    .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64)),
            );
            out[(h % self.half as u64) as usize] += 1.0;
        }
        linalg::vector::normalize(&mut out);
        out
    }
}

impl SequenceEmbedder for HashingEmbedder {
    fn dim(&self) -> usize {
        2 * self.half
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let (l, r) = text.split_once(" sep ").unwrap_or((text, ""));
        let hl = self.hash_bow(l);
        let hr = self.hash_bow(r);
        let mut out = linalg::vector::add(&hl, &hr);
        out.extend(linalg::vector::abs_diff(&hl, &hr));
        out
    }

    fn name(&self) -> String {
        format!("hash{}", 2 * self.half)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_and_determinism() {
        let e = HashingEmbedder::new(32);
        assert_eq!(e.dim(), 32);
        assert_eq!(e.name(), "hash32");
        let a = e.embed("ipad pro 11 sep ipad pro 11 inch");
        assert_eq!(a.len(), 32);
        assert_eq!(a, e.embed("ipad pro 11 sep ipad pro 11 inch"));
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn identical_sides_zero_the_difference_half() {
        let e = HashingEmbedder::new(16);
        let v = e.embed("acme alpha sep acme alpha");
        assert!(v[8..].iter().all(|&x| x == 0.0));
        let w = e.embed("acme alpha sep zzz qqq");
        assert!(w[8..].iter().any(|&x| x != 0.0));
    }

    #[test]
    fn missing_separator_is_left_side_only() {
        let e = HashingEmbedder::new(16);
        let v = e.embed("acme alpha");
        let coupled = e.embed("acme alpha sep ");
        assert_eq!(v, coupled);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_width_rejected() {
        HashingEmbedder::new(7);
    }
}
