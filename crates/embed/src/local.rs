//! Local embeddings — the paper's §6(2) future work, implemented.
//!
//! Instead of a generalist pretrained checkpoint, a **local** embedder
//! trains word vectors on the *target dataset itself* (the idea the paper
//! cites from Cappuzzo et al., SIGMOD 2020). [`LocalEmbedder`] wraps a
//! dataset-trained [`Word2Vec`] with the same coupled-sequence readout the
//! transformer families use — mean vector, segment difference and
//! soft-alignment scalars — so the two plug into the same EM adapter and
//! can be compared head-to-head (see the `ablations` bench).

use crate::word2vec::{W2vConfig, Word2Vec};
use crate::SequenceEmbedder;
use linalg::vector::{cosine, cosine_with_norms, norm};
use text::tokenize::words;

/// A dataset-local word2vec embedder with the coupled-pair readout.
pub struct LocalEmbedder {
    w2v: Word2Vec,
    dim: usize,
}

impl LocalEmbedder {
    /// Train on the target dataset's text (one string per record side or
    /// attribute value — anything tokenizable).
    pub fn train(texts: &[String], dim: usize, seed: u64) -> Self {
        let sentences: Vec<Vec<String>> = texts
            .iter()
            .map(|t| words(t))
            .filter(|t| !t.is_empty())
            .collect();
        let w2v = Word2Vec::train(
            &sentences,
            W2vConfig {
                dim,
                epochs: 4,
                seed,
                ..W2vConfig::default()
            },
        );
        Self { w2v, dim }
    }

    /// Vocabulary size of the underlying word2vec.
    pub fn vocab_size(&self) -> usize {
        self.w2v.vocab_size()
    }

    fn token_vectors(&self, tokens: &[String]) -> Vec<Vec<f32>> {
        tokens
            .iter()
            .filter_map(|t| self.w2v.vector(t).map(<[f32]>::to_vec))
            .collect()
    }
}

/// Mean of the best cosine match of each `a` vector against `b`.
///
/// Norms are hoisted out of the pair loop; `cosine_with_norms` is
/// bit-identical to `cosine` by the fused-cosine contract in
/// `linalg::vector`.
fn soft_overlap(a: &[Vec<f32>], b: &[Vec<f32>]) -> f32 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let b_norms: Vec<f32> = b.iter().map(|vb| norm(vb)).collect();
    let mut total = 0.0f32;
    for va in a {
        let na = norm(va);
        let best = b
            .iter()
            .zip(&b_norms)
            .map(|(vb, &nb)| cosine_with_norms(va, vb, na, nb))
            .fold(-1.0f32, f32::max);
        total += best;
    }
    total / a.len() as f32
}

impl SequenceEmbedder for LocalEmbedder {
    fn dim(&self) -> usize {
        // mean ⧺ |Δsegment| ⧺ [me_lr, me_rl, cos, len-ratio]
        2 * self.dim + 4
    }

    fn embed(&self, textv: &str) -> Vec<f32> {
        let toks = words(textv);
        let mut out = self.w2v.average(&toks);
        let boundary = toks.iter().position(|t| t == "sep");
        match boundary {
            Some(b) if b > 0 && b + 1 < toks.len() => {
                let left = &toks[..b];
                let right = &toks[b + 1..];
                let la = self.w2v.average(left);
                let ra = self.w2v.average(right);
                out.extend(la.iter().zip(&ra).map(|(x, y)| (x - y).abs()));
                let lv = self.token_vectors(left);
                let rv = self.token_vectors(right);
                out.push(soft_overlap(&lv, &rv));
                out.push(soft_overlap(&rv, &lv));
                out.push(cosine(&la, &ra));
                let (ln, rn) = (left.len() as f32, right.len() as f32);
                out.push((ln.min(rn) / ln.max(rn)).clamp(0.0, 1.0));
            }
            _ => out.extend(std::iter::repeat_n(0.0, self.dim + 4)),
        }
        out
    }

    fn name(&self) -> String {
        format!("local-w2v(d={})", self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedder() -> LocalEmbedder {
        let texts: Vec<String> = (0..60)
            .map(|i| {
                format!(
                    "sony camera model{} lens kit sep sony camera model{} lens",
                    i % 6,
                    i % 6
                )
            })
            .collect();
        LocalEmbedder::train(&texts, 16, 1)
    }

    #[test]
    fn dims_and_finiteness() {
        let e = embedder();
        let v = e.embed("sony camera sep sony camera kit");
        assert_eq!(v.len(), e.dim());
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn identical_halves_score_high_overlap() {
        let e = embedder();
        let dim = e.dim();
        let same = e.embed("sony camera lens sep sony camera lens");
        let diff = e.embed("sony camera lens sep kit kit kit");
        assert!(
            same[dim - 4] > diff[dim - 4],
            "{} vs {}",
            same[dim - 4],
            diff[dim - 4]
        );
        assert!(same[dim - 2] > diff[dim - 2]); // segment cosine
    }

    #[test]
    fn no_separator_zeroes_alignment_block() {
        let e = embedder();
        let dim = e.dim();
        let v = e.embed("sony camera lens");
        assert!(v[dim - 4..].iter().all(|&x| x == 0.0));
        // and the segment-diff block too
        assert!(v[16..16 + 16 + 4].iter().rev().take(4).all(|&x| x == 0.0));
    }

    #[test]
    fn trains_on_dataset_text_only() {
        let e = embedder();
        assert!(e.vocab_size() >= 6);
        // a word never seen contributes nothing (average of empty = zeros)
        let v = e.embed("zzz qqq");
        assert!(v[..16].iter().all(|&x| x == 0.0));
    }
}
