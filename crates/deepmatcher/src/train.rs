//! DeepMatcher training loop and the fitted wrapper used by the benchmark
//! harness.

use crate::model::{DeepMatcher, DeepMatcherConfig};
use em_data::{EmDataset, RecordPair, Split};
use linalg::Rng;
use ml::metrics::{best_f1_threshold, f1_at_threshold};
use nn::optim::Adam;
use nn::{Grads, Tape};

/// Training hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training split.
    pub epochs: usize,
    /// Examples per optimizer step.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight positive examples by `n_neg / n_pos` (EM is imbalanced).
    pub balanced: bool,
    /// L2 weight decay applied with the gradient step.
    pub weight_decay: f32,
    /// Seed (shuffling).
    pub seed: u64,
    /// Model architecture.
    pub model: DeepMatcherConfig,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 6,
            batch: 16,
            lr: 2e-3,
            balanced: true,
            weight_decay: 1e-4,
            seed: 0,
            model: DeepMatcherConfig::default(),
        }
    }
}

/// A trained DeepMatcher with its validation-tuned threshold.
pub struct TrainedDeepMatcher {
    /// The fitted network.
    pub model: DeepMatcher,
    /// Decision threshold tuned on the validation split.
    pub threshold: f32,
    /// Validation F1 at that threshold.
    pub val_f1: f64,
    /// Estimated training time in paper-hours (reported next to the F1
    /// columns in Tables 2 and 5; scales with dataset size like the real
    /// system's GPU-hours do).
    pub hours: f64,
}

impl TrainedDeepMatcher {
    /// Match probability of a pair.
    pub fn predict_proba(&self, pair: &RecordPair) -> f32 {
        self.model.predict_proba(pair)
    }

    /// F1 (percentage points) over a pair slice at the tuned threshold.
    pub fn f1_on(&self, pairs: &[RecordPair]) -> f64 {
        let probs: Vec<f32> = pairs.iter().map(|p| self.predict_proba(p)).collect();
        let labels: Vec<bool> = pairs.iter().map(|p| p.label).collect();
        f1_at_threshold(&probs, &labels, self.threshold)
    }
}

/// Paper-hours estimate for training DeepMatcher on `n_pairs` records —
/// fitted to the times the paper reports (8.5 h on the 28.7k-pair datasets,
/// minutes on the hundreds-of-pairs ones).
pub fn estimated_hours(n_pairs: usize) -> f64 {
    0.03 + n_pairs as f64 * 2.95e-4
}

/// Train DeepMatcher (Hybrid) on a dataset's train split, tune the
/// threshold on validation.
pub fn train_deepmatcher(dataset: &EmDataset, config: TrainConfig) -> TrainedDeepMatcher {
    let train = dataset.split(Split::Train);
    let model = DeepMatcher::new(dataset.schema(), train, config.model);
    train_on_pairs(
        model,
        train,
        dataset.split(Split::Validation),
        dataset.len(),
        config,
    )
}

fn train_on_pairs(
    model: DeepMatcher,
    train: &[RecordPair],
    valid: &[RecordPair],
    total_pairs: usize,
    config: TrainConfig,
) -> TrainedDeepMatcher {
    let mut model = model;
    let train_span = obs::span("deepmatcher.train");
    // adaptive epoch count: small training sets need many more passes
    // (the paper's DeepMatcher trains to convergence with early stopping)
    let epochs = config.epochs.max((6000 / train.len().max(1)).clamp(1, 30));
    let mut rng = Rng::new(config.seed ^ 0xD37A);
    let mut opt = Adam::new(config.lr);
    let n_pos = train.iter().filter(|p| p.label).count().max(1);
    let n_neg = (train.len() - n_pos).max(1);
    let pos_weight = if config.balanced {
        (n_neg as f32 / n_pos as f32).min(10.0)
    } else {
        1.0
    };
    let mut order: Vec<usize> = (0..train.len()).collect();
    // early stopping à la DeepMatcher: keep the parameter snapshot of the
    // epoch with the best validation F1
    let mut best_snapshot: Option<(f64, nn::ParamStore)> = None;
    for epoch in 0..epochs {
        let mut loss_sum = 0.0f64;
        let mut loss_n = 0usize;
        rng.shuffle(&mut order);
        for chunk in order.chunks(config.batch) {
            let mut grads = Grads::new();
            let mut weight_sum = 0.0f32;
            for &i in chunk {
                let pair = &train[i];
                let w = if pair.label { pos_weight } else { 1.0 };
                let mut tape = Tape::new();
                let mut drop_rng = rng.fork(i as u64);
                let logit = model.forward_train(&mut tape, pair, Some(&mut drop_rng));
                let loss = tape.bce_logits(logit, &[if pair.label { 1.0 } else { 0.0 }]);
                loss_sum += f64::from(tape.value(loss).as_slice()[0]);
                loss_n += 1;
                let scaled = tape.scale(loss, w);
                tape.backward(scaled, &mut grads);
                weight_sum += w;
            }
            if weight_sum > 0.0 {
                if config.model.freeze_embedding {
                    grads.clear_slot(model.embedding_table());
                }
                grads.scale(1.0 / weight_sum);
                grads.clip_norm(5.0);
                if config.weight_decay > 0.0 {
                    let decay = 1.0 - config.lr * config.weight_decay;
                    for id in model.store.ids().collect::<Vec<_>>() {
                        model.store.get_mut(id).map_inplace(|w| w * decay);
                    }
                }
                opt.step(&mut model.store, &grads);
            }
        }
        let mut epoch_val_f1 = f64::NAN;
        if !valid.is_empty() {
            let probs: Vec<f32> = valid.iter().map(|p| model.predict_proba(p)).collect();
            let labels: Vec<bool> = valid.iter().map(|p| p.label).collect();
            let (_, f1) = best_f1_threshold(&probs, &labels);
            epoch_val_f1 = f1;
            if best_snapshot.as_ref().is_none_or(|(b, _)| f1 > *b) {
                best_snapshot = Some((f1, model.store.clone()));
            }
        }
        obs::emit(
            "dm_epoch",
            &[
                ("epoch", obs::Value::U64(epoch as u64)),
                (
                    "train_loss",
                    obs::Value::F64(loss_sum / loss_n.max(1) as f64),
                ),
                ("val_f1", obs::Value::F64(epoch_val_f1)),
            ],
        );
    }
    if let Some((_, snapshot)) = best_snapshot {
        model.store = snapshot;
    }
    // threshold tuning on validation
    let probs: Vec<f32> = valid.iter().map(|p| model.predict_proba(p)).collect();
    let labels: Vec<bool> = valid.iter().map(|p| p.label).collect();
    let (threshold, val_f1) = if valid.is_empty() {
        (0.5, 0.0)
    } else {
        best_f1_threshold(&probs, &labels)
    };
    let hours = estimated_hours(total_pairs);
    obs::gauge("deepmatcher.estimated_hours").add(hours);
    drop(train_span);
    TrainedDeepMatcher {
        model,
        threshold,
        val_f1,
        hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::MagellanDataset;

    fn quick_config() -> TrainConfig {
        TrainConfig {
            epochs: 4,
            model: DeepMatcherConfig {
                embed_dim: 16,
                hidden: 12,
                compare_dim: 16,
                clf_hidden: 24,
                max_tokens: 8,
                ..DeepMatcherConfig::default()
            },
            ..TrainConfig::default()
        }
    }

    #[test]
    fn learns_the_easy_dataset() {
        // S-FZ is the saturated dataset (paper F1 = 100); a scaled-down
        // version must be learnable well above the random baseline
        // (all-positive guessing sits near 21 F1 at 11.6% matches)
        let d = MagellanDataset::SFZ.profile().generate(9);
        let trained = train_deepmatcher(&d, TrainConfig::default());
        let test_f1 = trained.f1_on(d.split(Split::Test));
        assert!(test_f1 > 45.0, "test F1 {test_f1}");
        assert!(trained.val_f1 > 45.0, "val F1 {}", trained.val_f1);
    }

    #[test]
    fn hours_scale_with_size() {
        assert!(estimated_hours(28_707) > 8.0);
        assert!(estimated_hours(450) < 0.2);
        assert!(estimated_hours(0) > 0.0);
    }

    #[test]
    fn threshold_in_unit_interval() {
        let d = MagellanDataset::SBR.profile().generate_scaled(4, 0.6);
        let trained = train_deepmatcher(
            &d,
            TrainConfig {
                epochs: 1,
                ..quick_config()
            },
        );
        assert!((0.0..=1.0).contains(&trained.threshold));
    }
}
