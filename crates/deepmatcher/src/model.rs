//! The DeepMatcher (Hybrid) network.

use em_data::{RecordPair, Schema};
use embed::word2vec as embed_init;
use linalg::Rng;
use nn::attention::SoftAlign;
use nn::layers::dropout_mask;
use nn::layers::{Embedding, Linear};
use nn::rnn::BiGru;
use nn::{ParamStore, Tape, TensorId};
use text::subword::{SubwordTokenizer, SubwordVocabBuilder};
use text::tokenize::words;

/// Model hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct DeepMatcherConfig {
    /// Token-embedding width.
    pub embed_dim: usize,
    /// GRU hidden width (per direction).
    pub hidden: usize,
    /// Comparison-projection width.
    pub compare_dim: usize,
    /// Classifier hidden width.
    pub clf_hidden: usize,
    /// Maximum tokens per attribute value.
    pub max_tokens: usize,
    /// Tokenize attribute values into subword pieces (typo-robust, the
    /// fastText-like behaviour) instead of whole words.
    pub subword: bool,
    /// Initialize the embedding table from skip-gram vectors trained on
    /// the training corpus (stands in for loading pretrained fastText).
    pub w2v_init: bool,
    /// Dropout probability on the classifier hidden layer (training only).
    pub dropout: f32,
    /// Keep the (w2v-initialized) embedding table frozen during training —
    /// DeepMatcher's default treatment of its fastText vectors. Freezing
    /// removes the model's main memorization channel on small data.
    pub freeze_embedding: bool,
    /// Seed for weight init.
    pub seed: u64,
}

impl Default for DeepMatcherConfig {
    fn default() -> Self {
        Self {
            embed_dim: 32,
            hidden: 24,
            compare_dim: 32,
            clf_hidden: 48,
            max_tokens: 16,
            subword: true,
            w2v_init: true,
            dropout: 0.25,
            freeze_embedding: true,
            seed: 0,
        }
    }
}

/// The Hybrid DeepMatcher network: per-attribute bi-GRU + soft-alignment
/// summarizers feeding a two-layer classifier.
pub struct DeepMatcher {
    /// Hyperparameters.
    pub config: DeepMatcherConfig,
    /// Trainable parameters.
    pub store: ParamStore,
    tokenizer: SubwordTokenizer,
    embedding: Embedding,
    rnn: BiGru,
    align: SoftAlign,
    compare: Linear,
    clf1: Linear,
    clf2: Linear,
    n_attrs: usize,
}

impl DeepMatcher {
    /// Build the network for a schema, with a **subword** vocabulary
    /// collected from the given training pairs. The original DeepMatcher
    /// consumes pretrained fastText vectors, whose character n-grams make
    /// it robust to typos and unseen model numbers; greedy subword pieces
    /// provide the same property here, and the embedding table is
    /// initialized from skip-gram vectors trained on the same corpus
    /// (the from-scratch stand-in for loading fastText).
    pub fn new(schema: &Schema, train_pairs: &[RecordPair], config: DeepMatcherConfig) -> Self {
        let mut builder = SubwordVocabBuilder::new();
        let mut sentences: Vec<Vec<String>> = Vec::new();
        for pair in train_pairs {
            for entity in [&pair.left, &pair.right] {
                for v in entity.values().flatten() {
                    builder.feed_text(v);
                }
            }
        }
        let tokenizer =
            SubwordTokenizer::new(builder.build(if config.subword { 3000 } else { 20_000 }));
        let to_tokens = |v: &str| -> Vec<String> {
            if config.subword {
                tokenizer.tokenize(v)
            } else {
                words(v)
            }
        };
        for pair in train_pairs {
            for entity in [&pair.left, &pair.right] {
                for v in entity.values().flatten() {
                    let pieces = to_tokens(v);
                    if !pieces.is_empty() {
                        sentences.push(pieces);
                    }
                }
            }
        }

        let mut rng = Rng::new(config.seed ^ 0xD33);
        let mut store = ParamStore::new();
        let vocab_len = tokenizer.vocab().len();
        let embedding = Embedding::new(&mut store, "emb", vocab_len, config.embed_dim, &mut rng);
        if config.w2v_init {
            // fastText stand-in: skip-gram init of the embedding table
            let w2v = embed_init::Word2Vec::train(
                &sentences,
                embed_init::W2vConfig {
                    dim: config.embed_dim,
                    epochs: 2,
                    seed: config.seed,
                    ..embed_init::W2vConfig::default()
                },
            );
            let table = store.get_mut(embedding.table());
            for (tok, id) in tokenizer.vocab().iter() {
                if let Some(v) = w2v.vector(tok) {
                    let row = table.row_mut(id as usize);
                    for (r, &x) in row.iter_mut().zip(v) {
                        // w2v vectors are small-magnitude; scale to the
                        // usual embedding init range
                        *r = x * 2.0;
                    }
                }
            }
        }
        let rnn = BiGru::new(&mut store, "rnn", config.embed_dim, config.hidden, &mut rng);
        let align = SoftAlign::new(&mut store, "align", 2 * config.hidden, &mut rng);
        // summarizer compare layer: [h, ctx, |h − ctx|] → compare_dim
        let compare = Linear::new(
            &mut store,
            "compare",
            6 * config.hidden,
            config.compare_dim,
            &mut rng,
        );
        // per attribute: [sq-diff, product] of mean⧺max-pooled summaries
        let clf_in = schema.len() * 2 * (2 * config.compare_dim);
        let clf1 = Linear::new(&mut store, "clf1", clf_in, config.clf_hidden, &mut rng);
        let clf2 = Linear::new(&mut store, "clf2", config.clf_hidden, 1, &mut rng);
        Self {
            config,
            store,
            tokenizer,
            embedding,
            rnn,
            align,
            compare,
            clf1,
            clf2,
            n_attrs: schema.len(),
        }
    }

    /// Token ids of one attribute value (always non-empty: missing values
    /// become a single `[PAD]`).
    fn ids(&self, value: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        for w in words(value) {
            if self.config.subword {
                for piece in self.tokenizer.pieces(&w) {
                    ids.push(self.tokenizer.vocab().id(&piece));
                    if ids.len() >= self.config.max_tokens {
                        break;
                    }
                }
            } else {
                ids.push(self.tokenizer.vocab().id(&w));
            }
            if ids.len() >= self.config.max_tokens {
                break;
            }
        }
        ids.truncate(self.config.max_tokens);
        if ids.is_empty() {
            ids.push(text::vocab::Vocab::PAD);
        }
        ids
    }

    /// Summarize one side against the other:
    /// `mean over tokens of relu(W[h, ctx, |h−ctx|])`.
    fn summarize(&self, tape: &mut Tape, h_self: TensorId, h_other: TensorId) -> TensorId {
        let ctx = self.align.forward(tape, &self.store, h_self, h_other);
        let diff = tape.sub(h_self, ctx);
        let sq = tape.mul(diff, diff);
        let joined0 = tape.concat_cols(h_self, ctx);
        let joined = tape.concat_cols(joined0, sq);
        let projected = self.compare.forward(tape, &self.store, joined);
        let activated = tape.relu(projected);
        // mean ⧺ max pooling: the mean carries overall agreement, the max
        // singles out the worst-aligned token (the discriminative signal
        // when two products differ only in a model number)
        let mean = tape.mean_rows(activated);
        let max = tape.max_rows(activated);
        tape.concat_cols(mean, max)
    }

    /// Forward pass: record pair → match logit (`1 × 1`). Pass a
    /// `dropout_rng` during training to enable dropout; inference passes
    /// `None` (identity).
    pub fn forward_train(
        &self,
        tape: &mut Tape,
        pair: &RecordPair,
        dropout_rng: Option<&mut Rng>,
    ) -> TensorId {
        let mut features: Option<TensorId> = None;
        for i in 0..self.n_attrs {
            let ids_l = self.ids(pair.left.value_or_empty(i));
            let ids_r = self.ids(pair.right.value_or_empty(i));
            let e_l = self.embedding.forward(tape, &self.store, &ids_l);
            let e_r = self.embedding.forward(tape, &self.store, &ids_r);
            let h_l = self.rnn.forward(tape, &self.store, e_l);
            let h_r = self.rnn.forward(tape, &self.store, e_r);
            let u_l = self.summarize(tape, h_l, h_r);
            let u_r = self.summarize(tape, h_r, h_l);
            // comparison vector: [|u_l − u_r|, u_l ∘ u_r]
            let d = tape.sub(u_l, u_r);
            let abs = {
                let sq = tape.mul(d, d);
                // |x| ≈ sqrt(x²+ε) is not available as an op; x² carries the
                // same information for the classifier
                sq
            };
            let prod = tape.mul(u_l, u_r);
            let cmp = tape.concat_cols(abs, prod);
            features = Some(match features {
                None => cmp,
                Some(acc) => tape.concat_cols(acc, cmp),
            });
        }
        let f = features.expect("schema has at least one attribute");
        let hidden = self.clf1.forward(tape, &self.store, f);
        let mut activated = tape.relu(hidden);
        if let Some(rng) = dropout_rng {
            let (r, c) = tape.shape(activated);
            let mask = dropout_mask(r, c, self.config.dropout, rng);
            activated = tape.dropout(activated, mask);
        }
        self.clf2.forward(tape, &self.store, activated)
    }

    /// Inference forward pass (no dropout).
    pub fn forward(&self, tape: &mut Tape, pair: &RecordPair) -> TensorId {
        self.forward_train(tape, pair, None)
    }

    /// Match probability of one pair (inference).
    pub fn predict_proba(&self, pair: &RecordPair) -> f32 {
        let mut tape = Tape::new();
        let logit = self.forward(&mut tape, pair);
        linalg::vector::sigmoid(tape.value(logit)[(0, 0)])
    }

    /// The embedding-table parameter id (frozen-embedding training needs
    /// to drop its gradient).
    pub fn embedding_table(&self) -> nn::ParamId {
        self.embedding.table()
    }

    /// Vocabulary size (diagnostics).
    pub fn vocab_size(&self) -> usize {
        self.tokenizer.vocab().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use em_data::{AttrType, Attribute, Entity};

    fn toy_schema() -> Schema {
        Schema::new(vec![
            Attribute::new("name", AttrType::Text),
            Attribute::new("price", AttrType::Numeric),
        ])
    }

    fn pair(l: &[&str], r: &[&str], label: bool) -> RecordPair {
        RecordPair::new(
            Entity::new(l.iter().map(|v| Some((*v).to_owned())).collect()),
            Entity::new(r.iter().map(|v| Some((*v).to_owned())).collect()),
            label,
        )
    }

    #[test]
    fn forward_produces_scalar_logit() {
        let schema = toy_schema();
        let pairs = vec![pair(&["red shoe", "10"], &["red shoes", "11"], true)];
        let dm = DeepMatcher::new(&schema, &pairs, DeepMatcherConfig::default());
        let mut tape = Tape::new();
        let logit = dm.forward(&mut tape, &pairs[0]);
        assert_eq!(tape.shape(logit), (1, 1));
        let p = dm.predict_proba(&pairs[0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn missing_values_handled() {
        let schema = toy_schema();
        let pairs = vec![pair(&["x", "1"], &["y", "2"], false)];
        let dm = DeepMatcher::new(&schema, &pairs, DeepMatcherConfig::default());
        let empty = RecordPair::new(Entity::empty(2), Entity::empty(2), false);
        let p = dm.predict_proba(&empty);
        assert!(p.is_finite());
    }

    #[test]
    fn vocab_built_from_training_pairs() {
        let schema = toy_schema();
        let pairs = vec![pair(&["alpha beta", "1"], &["gamma", "2"], true)];
        let dm = DeepMatcher::new(&schema, &pairs, DeepMatcherConfig::default());
        // subword vocabulary: specials + characters (+ continuations) +
        // the whole words — every training word must encode without UNK
        assert!(dm.vocab_size() > 10);
        for value in ["alpha beta", "gamma"] {
            let ids = dm.ids(value);
            assert!(
                ids.iter().all(|&i| i != text::vocab::Vocab::UNK),
                "{value}: {ids:?}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let schema = toy_schema();
        let pairs = vec![pair(&["a b c", "3"], &["a b", "3"], true)];
        let a = DeepMatcher::new(&schema, &pairs, DeepMatcherConfig::default());
        let b = DeepMatcher::new(&schema, &pairs, DeepMatcherConfig::default());
        assert_eq!(a.predict_proba(&pairs[0]), b.predict_proba(&pairs[0]));
    }
}
