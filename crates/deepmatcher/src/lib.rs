//! # deepmatcher — the paper's baseline EM system, reimplemented
//!
//! DeepMatcher (Mudgal et al., SIGMOD 2018) in its **Hybrid** variant — the
//! configuration every table of the paper compares against. Architecture,
//! per attribute:
//!
//! 1. token embeddings for both value sequences ([`model`]);
//! 2. *attribute summarization* with a bidirectional GRU **and**
//!    decomposable soft-alignment attention against the other side (the
//!    "RNN + attention" combination that defines the Hybrid variant);
//! 3. a comparison vector `[|u₁ − u₂|, u₁ ∘ u₂]` of the two summaries;
//!
//! then the per-attribute comparison vectors are concatenated and scored by
//! a two-layer classifier. Training is Adam over binary cross-entropy with
//! a validation-tuned decision threshold ([`train`]).
//!
//! The original uses pretrained fastText vectors; we learn the embedding
//! table from scratch on the training split (the datasets here are
//! synthetic, so no external vectors exist) — capacity is scaled so the
//! model remains the strongest single system in the reproduction, as
//! DeepMatcher is in the paper.

pub mod model;
pub mod train;

pub use model::{DeepMatcher, DeepMatcherConfig};
pub use train::{train_deepmatcher, TrainConfig, TrainedDeepMatcher};
