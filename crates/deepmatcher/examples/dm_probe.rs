use deepmatcher::{train_deepmatcher, TrainConfig};
use em_data::{DatasetProfile, MagellanDataset, Split};

fn main() {
    // sweep difficulty for the Walmart-Amazon profile
    for diff in [0.55f64, 0.65, 0.75] {
        let base = MagellanDataset::SWA.profile();
        let p = DatasetProfile {
            difficulty: diff,
            ..base
        };
        let d = p.generate_scaled(9, 0.12);
        let dm = train_deepmatcher(
            &d,
            TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        );
        println!(
            "S-WA diff {}: val {:.1} test {:.1}",
            diff,
            dm.val_f1,
            dm.f1_on(d.split(Split::Test))
        );
    }
    for diff in [0.35f64, 0.45] {
        let base = MagellanDataset::SAG.profile();
        let p = DatasetProfile {
            difficulty: diff,
            ..base
        };
        let d = p.generate_scaled(9, 0.12);
        let dm = train_deepmatcher(
            &d,
            TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        );
        println!(
            "S-AG diff {}: val {:.1} test {:.1}",
            diff,
            dm.val_f1,
            dm.f1_on(d.split(Split::Test))
        );
    }
}
