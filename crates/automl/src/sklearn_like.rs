//! AutoSklearn-style system: meta-learning warm starts → SMBO (random-forest
//! surrogate + expected improvement) → greedy ensemble selection.
//!
//! Budget semantics follow the real tool: the run keeps searching until the
//! time budget is gone and the reported training time is always the full
//! budget (Table 2 shows 1.00 h for every dataset).
//!
//! The SMBO loop is **batched**: each round proposes [`SMBO_BATCH`]
//! candidates from the same surrogate snapshot (constant-liar batch SMBO)
//! and fits them through the `par` worker pool. Candidate choice, model
//! seeds, budget charges and trial telemetry all happen on the driving
//! thread in submission order, so the full [`FitReport`] is byte-identical
//! for every thread count — threads only change wall-clock time.

use crate::budget::{fit_cost, Budget};
use crate::ensemble::{greedy_selection, weighted_average};
use crate::fault::FaultPlan;
use crate::journal::{ResumePolicy, SearchRun};
use crate::leaderboard::{FitReport, Leaderboard};
use crate::smbo::{propose, warm_starts, Surrogate};
use crate::space::{sklearn_families, Candidate};
use crate::telemetry::TrialTracker;
use crate::trial::{all_failed_error, guard_trial_timed};
use crate::AutoMlSystem;
use linalg::{Matrix, Rng};
use ml::dataset::TabularData;
use ml::metrics::best_f1_threshold;
use ml::{Classifier, TrialError};
use par::Deadline;

/// Minimum random evaluations before the surrogate takes over.
const MIN_RANDOM_EVALS: usize = 8;
/// Surrogate forest size.
const SURROGATE_TREES: usize = 20;
/// Greedy-selection iterations.
const ENSEMBLE_ROUNDS: usize = 25;
/// Candidates proposed per SMBO round and fitted concurrently. Part of
/// the search algorithm, **not** tied to the worker count: the same batch
/// is planned whatever `par::threads()` says, so results never depend on
/// the machine.
pub const SMBO_BATCH: usize = 4;

/// The AutoSklearn-style engine. See module docs.
pub struct AutoSklearnStyle {
    seed: u64,
    faults: FaultPlan,
    members: Vec<Box<dyn Classifier>>,
    weights: Vec<f32>,
    threshold: f32,
}

impl AutoSklearnStyle {
    /// New engine with a deterministic seed (faults come from the
    /// `AUTOML_EM_FAULTS` environment variable, usually none).
    pub fn new(seed: u64) -> Self {
        Self::with_faults(seed, FaultPlan::from_env())
    }

    /// New engine with an explicit fault-injection plan (tests).
    pub fn with_faults(seed: u64, faults: FaultPlan) -> Self {
        Self {
            seed,
            faults,
            members: Vec::new(),
            weights: Vec::new(),
            threshold: 0.5,
        }
    }
}

impl AutoMlSystem for AutoSklearnStyle {
    fn name(&self) -> &'static str {
        "AutoSklearn"
    }

    fn fit_resumable(
        &mut self,
        train: &TabularData,
        valid: &TabularData,
        budget: &mut Budget,
        policy: &ResumePolicy,
        deadline: Deadline,
    ) -> Result<FitReport, TrialError> {
        let span = obs::span("automl.AutoSklearn.fit");
        let mut tracker = TrialTracker::new(self.name());
        let mut rng = Rng::new(self.seed ^ 0xA51);
        let families = sklearn_families();
        let valid_labels = valid.labels_bool();
        let mut leaderboard = Leaderboard::new();
        let positives = train.y.iter().filter(|&&v| v >= 0.5).count();
        let mut run = SearchRun::start(
            self.name(),
            self.seed,
            budget,
            &[
                &format!("families={families:?}"),
                &format!(
                    "rows={} cols={} pos={positives} valid={}",
                    train.len(),
                    train.x.cols(),
                    valid.len()
                ),
                &format!(
                    "batch={SMBO_BATCH} min_random={MIN_RANDOM_EVALS} \
                     trees={SURROGATE_TREES} rounds={ENSEMBLE_ROUNDS}"
                ),
            ],
            policy,
            deadline,
        )?;
        let mut deadline_cut = false;

        let mut warm = warm_starts(train.len(), train.positive_ratio());
        warm.reverse(); // pop() yields them in priority order
        let mut history: Vec<(Candidate, f64)> = Vec::new();
        let mut fitted: Vec<(Box<dyn Classifier>, Vec<f32>)> = Vec::new();

        let seed = self.seed;
        let mut eval_idx = 0u64;
        loop {
            // --- wall-clock ceiling: stop planning once the deadline has
            //     passed and hand back the best-so-far report ---
            if run.deadline_expired() {
                run.note_deadline();
                deadline_cut = true;
                break;
            }
            // --- plan one batch on the driving thread (deterministic) ---
            // one surrogate snapshot per round; every proposal in the
            // round maximizes EI against it (constant-liar batch SMBO)
            let surrogate = if warm.is_empty() && history.len() >= MIN_RANDOM_EVALS {
                let rows: Vec<Vec<f32>> =
                    history.iter().map(|(c, _)| c.encode(&families)).collect();
                let scores: Vec<f64> = history.iter().map(|(_, s)| *s).collect();
                Some(Surrogate::fit(
                    &Matrix::from_rows(&rows),
                    &scores,
                    SURROGATE_TREES,
                    &mut rng,
                ))
            } else {
                None
            };
            let mut sim = budget.clone(); // replayed on `budget` below
            let mut planned: Vec<(Candidate, f64, u64)> = Vec::new();
            let mut starved = false;
            while planned.len() < SMBO_BATCH {
                let candidate = if let Some(c) = warm.pop() {
                    c
                } else if let Some(s) = surrogate
                    .as_ref()
                    .filter(|_| history.len() + planned.len() >= MIN_RANDOM_EVALS)
                {
                    propose(s, &families, &history, &mut rng)
                } else {
                    Candidate::sample(&families, &mut rng)
                };
                let cost = fit_cost(candidate.family, train.len());
                if !sim.can_afford(cost) {
                    starved = true;
                    break;
                }
                sim.consume(cost);
                planned.push((candidate, cost, eval_idx));
                eval_idx += 1;
            }
            if planned.is_empty() {
                break;
            }
            // WAL intent records: one fsync per batch
            for (candidate, cost, idx) in &planned {
                let name = candidate.build(seed.wrapping_add(*idx)).name();
                run.note_planned(*idx, &name, *cost);
            }
            run.sync();

            // --- fit the batch in parallel; results come back in
            //     submission order whatever the scheduling. Each fit runs
            //     inside the trial boundary so a failing candidate — panic,
            //     NaN score, injected fault — is quarantined as an `Err`
            //     without losing the worker or the batch. Failures
            //     replayed from the journal are restored without
            //     re-running (their outcome may have been wall-clock
            //     dependent, e.g. a deadline abandonment) ---
            let faults = &self.faults;
            let view = run.view();
            let engine = self.name();
            let evals = par::map(&planned, |(candidate, _, idx)| match view.failed(*idx) {
                Some(err) => (Err(err), 0.0),
                None => guard_trial_timed(engine, faults.get(*idx), view.token(), || {
                    let mut model = candidate.build(seed.wrapping_add(*idx));
                    model.fit(&train.x, &train.y)?;
                    let probs = model.predict_proba(&valid.x);
                    let (_, f1) = best_f1_threshold(&probs, &valid_labels);
                    Ok((model, probs, f1))
                }),
            });

            // --- charge budget, journal outcomes and emit telemetry in
            //     submission order (replayed trials charge their recorded
            //     units, so nothing is double-charged on resume) ---
            for ((candidate, cost, idx), (eval, wall_ms)) in planned.into_iter().zip(evals) {
                let charged = run.charge(idx, cost * self.faults.cost_multiplier(idx));
                budget.consume(charged);
                match eval {
                    Ok((model, probs, f1)) => {
                        run.record_done(idx, &model.name(), f1, charged)?;
                        tracker.record(candidate.family, &model.name(), f1, charged, wall_ms);
                        leaderboard.push(model.name(), f1, charged);
                        history.push((candidate, f1 / 100.0));
                        fitted.push((model, probs));
                    }
                    Err(err) => {
                        // the attempted work is charged, the candidate is
                        // quarantined, and the search continues
                        let name = candidate.build(seed.wrapping_add(idx)).name();
                        run.record_failed(idx, &name, &err, charged)?;
                        tracker.record_failure(candidate.family, &name, &err, charged, wall_ms);
                        leaderboard.push_failed(name, err, charged);
                    }
                }
            }
            if starved {
                break;
            }
        }

        // greedy ensemble selection over everything evaluated
        if fitted.is_empty() {
            span.add_units(budget.used());
            return Err(all_failed_error(&leaderboard, budget, train.len()));
        }
        let val_probs: Vec<Vec<f32>> = fitted.iter().map(|(_, p)| p.clone()).collect();
        let weights = greedy_selection(&val_probs, &valid_labels, ENSEMBLE_ROUNDS);
        let ens_val = weighted_average(&val_probs, &weights);
        let (threshold, val_f1) = best_f1_threshold(&ens_val, &valid_labels);

        self.members = Vec::new();
        self.weights = Vec::new();
        for ((model, _), &w) in fitted.into_iter().zip(&weights) {
            if w > 0.0 {
                self.members.push(model);
                self.weights.push(w);
            }
        }
        self.threshold = threshold;

        // the real AutoSklearn always runs out its clock — unless a
        // wall-clock deadline cut the run short, in which case reporting
        // the drained budget would overstate the work done
        if !deadline_cut {
            budget.drain();
        }
        span.add_units(budget.used());
        Ok(FitReport {
            system: self.name(),
            units_used: budget.used(),
            hours_used: budget.used_hours(),
            val_f1,
            threshold,
            leaderboard,
        })
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.members.is_empty(), "predict before fit");
        let probs: Vec<Vec<f32>> = self.members.iter().map(|m| m.predict_proba(x)).collect();
        weighted_average(&probs, &self.weights)
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use ml::metrics::f1_score;

    fn blob_data(n: usize, seed: u64) -> TabularData {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = rng.chance(0.25);
            let c = if pos { 1.2f32 } else { -1.2 };
            rows.push(vec![c + rng.normal(), -c + rng.normal(), rng.normal()]);
            y.push(if pos { 1.0 } else { 0.0 });
        }
        TabularData::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn end_to_end_on_separable_data() {
        let train = blob_data(300, 1);
        let valid = blob_data(120, 2);
        let test = blob_data(120, 3);
        let mut sys = AutoSklearnStyle::new(7);
        let mut budget = Budget::hours(1.0).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(budget.exhausted(), "AutoSklearn must drain its budget");
        assert!(
            report.leaderboard.len() >= 4,
            "{}",
            report.leaderboard.len()
        );
        let preds = sys.predict(&test.x);
        let f1 = f1_score(&preds, &test.labels_bool());
        assert!(f1 > 85.0, "F1 {f1}");
    }

    #[test]
    fn reported_hours_equal_budget() {
        let train = blob_data(150, 4);
        let valid = blob_data(60, 5);
        let mut sys = AutoSklearnStyle::new(1);
        let mut budget = Budget::hours(0.5).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!((report.hours_used - 0.5).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blob_data(150, 6);
        let valid = blob_data(60, 7);
        let run = |seed| {
            let mut sys = AutoSklearnStyle::new(seed);
            let mut budget = Budget::hours(0.3).unwrap();
            sys.fit(&train, &valid, &mut budget).unwrap();
            sys.predict_proba(&valid.x)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn larger_budget_evaluates_more_models() {
        let train = blob_data(200, 8);
        let valid = blob_data(80, 9);
        let mut small_sys = AutoSklearnStyle::new(3);
        let mut small_budget = Budget::hours(0.3).unwrap();
        let small = small_sys.fit(&train, &valid, &mut small_budget).unwrap();
        let mut big_sys = AutoSklearnStyle::new(3);
        let mut big_budget = Budget::hours(2.0).unwrap();
        let big = big_sys.fit(&train, &valid, &mut big_budget).unwrap();
        assert!(big.leaderboard.len() > small.leaderboard.len());
    }
}
