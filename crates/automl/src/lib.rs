//! # automl — three AutoML engines in the style of the paper's systems
//!
//! The paper pipelines its EM adapter with AutoSklearn, AutoGluon and
//! H2OAutoML. None exists in Rust, so this crate reimplements the *search
//! strategy* that defines each system, on top of the `ml` model zoo:
//!
//! * [`sklearn_like::AutoSklearnStyle`] — meta-learning warm starts, then
//!   **Bayesian optimization** (SMBO with a random-forest surrogate and
//!   expected improvement), finished by **greedy ensemble selection**
//!   (Caruana). Always consumes its full budget, like the real system.
//! * [`gluon_like::AutoGluonStyle`] — **no hyperparameter search**: a fixed
//!   roster of model families (GBM, CatBoost-style oblivious GBM, random
//!   forest, extra-trees, kNN), k-fold **bagging** and **multi-layer
//!   stacking** with out-of-fold features.
//! * [`h2o_like::H2oStyle`] — **fast random search** over the space plus a
//!   **super learner**: a stacked ensemble whose metalearner is a
//!   ridge-regularized GLM over out-of-fold predictions.
//!
//! Budgets ([`budget::Budget`]) are counted in deterministic *units* rather
//! than wall-clock seconds so every experiment is reproducible; the unit
//! scale is calibrated so one paper-hour ≈ [`budget::UNITS_PER_HOUR`] units
//! and a model's cost grows with training-set size — which reproduces the
//! paper's observed training-time patterns (e.g. AutoGluon taking > 4 h on
//! DBLP-GoogleScholar but minutes on the beer dataset).

#![warn(missing_docs)]
#![cfg_attr(
    not(test),
    warn(clippy::unwrap_used, clippy::expect_used, clippy::panic)
)]

pub mod budget;
pub mod ensemble;
pub mod fault;
pub mod gluon_like;
pub mod h2o_like;
pub mod halving;
pub mod journal;
pub mod leaderboard;
pub mod sklearn_like;
pub mod smbo;
pub mod space;
pub mod telemetry;
pub(crate) mod trial;

use linalg::Matrix;
use ml::dataset::TabularData;

pub use budget::Budget;
pub use fault::{Fault, FaultPlan, FaultSpecError};
pub use journal::ResumePolicy;
pub use leaderboard::{FitReport, Leaderboard, LeaderboardEntry};
pub use ml::TrialError;
pub use par::{CancelToken, Deadline};

/// A complete AutoML system: give it train/validation data and a budget,
/// get a fitted predictor with a validation-tuned decision threshold.
pub trait AutoMlSystem {
    /// System name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Run the system's full search under `budget`. Models are trained on
    /// `train`; all selection, stacking and threshold tuning uses `valid`.
    ///
    /// Individual candidate failures (NaN scores, panicking fits,
    /// injected faults) are quarantined on the report's leaderboard and
    /// the search continues; `Err` means the *run itself* could not
    /// produce a predictor — every trial failed
    /// ([`TrialError::AllTrialsFailed`]) or the budget could not cover a
    /// single fit ([`TrialError::BudgetExceeded`]).
    ///
    /// Equivalent to [`AutoMlSystem::fit_resumable`] with no journal and
    /// no deadline.
    fn fit(
        &mut self,
        train: &TabularData,
        valid: &TabularData,
        budget: &mut Budget,
    ) -> Result<FitReport, TrialError> {
        self.fit_resumable(train, valid, budget, &ResumePolicy::Fresh, Deadline::none())
    }

    /// Crash-safe variant of [`AutoMlSystem::fit`].
    ///
    /// `policy` connects the search to an on-disk write-ahead journal
    /// (see [`journal`]): with [`ResumePolicy::Resume`] a prior
    /// interrupted run's trials are replayed instead of repeated, and the
    /// final report is byte-identical to the uninterrupted run's.
    /// `deadline` is a wall-clock ceiling: once it passes the engine
    /// stops planning new trials, abandons in-flight fits cooperatively
    /// (quarantined as [`TrialError::DeadlineExceeded`]) and returns its
    /// best-so-far report — total overrun is bounded by one
    /// trial-cancellation grace period.
    fn fit_resumable(
        &mut self,
        train: &TabularData,
        valid: &TabularData,
        budget: &mut Budget,
        policy: &ResumePolicy,
        deadline: Deadline,
    ) -> Result<FitReport, TrialError>;

    /// Match probability per row (requires a prior `fit`).
    fn predict_proba(&self, x: &Matrix) -> Vec<f32>;

    /// The decision threshold tuned on validation data during `fit`.
    fn threshold(&self) -> f32;

    /// Hard predictions using the tuned threshold.
    fn predict(&self, x: &Matrix) -> Vec<bool> {
        let t = self.threshold();
        self.predict_proba(x).iter().map(|&p| p >= t).collect()
    }
}

/// The three systems, boxed, in the order the paper's tables list them.
pub fn all_systems(seed: u64) -> Vec<Box<dyn AutoMlSystem>> {
    vec![
        Box::new(sklearn_like::AutoSklearnStyle::new(seed)),
        Box::new(gluon_like::AutoGluonStyle::new(seed)),
        Box::new(h2o_like::H2oStyle::new(seed)),
    ]
}
