//! H2OAutoML-style system: fast random search over the model space plus
//! stacked ensembles ("super learner") with a ridge-GLM metalearner —
//! the combination the paper's §2 describes in place of Bayesian
//! optimization.
//!
//! Like the real tool, the run can finish *before* the budget is gone: the
//! random search is capped, which is why Table 2 reports 0.74–0.97 h
//! against a 1-hour limit.
//!
//! The random grid is fully independent, so the whole affordable search is
//! planned up front (same rng stream and budget arithmetic as a sequential
//! search) and fitted through the `par` worker pool; charges and telemetry
//! replay in submission order, keeping the report byte-identical to the
//! sequential one at any thread count.

use crate::budget::{fit_cost, Budget, ModelFamily};
use crate::ensemble::{out_of_fold, GlmMetalearner};
use crate::fault::FaultPlan;
use crate::journal::{ResumePolicy, SearchRun};
use crate::leaderboard::{FitReport, Leaderboard};
use crate::space::{h2o_families, Candidate};
use crate::telemetry::TrialTracker;
use crate::trial::{all_failed_error, guard_trial_timed};
use crate::AutoMlSystem;
use linalg::{Matrix, Rng};
use ml::dataset::TabularData;
use ml::metrics::best_f1_threshold;
use ml::{Classifier, TrialError};
use par::Deadline;

/// Random-search cap (the tool's `max_models` knob).
const MAX_MODELS: usize = 24;
/// Members of the super learner (top models by validation F1).
const STACK_TOP: usize = 6;
/// Folds used to build leak-free metalearner features.
const K_FOLDS: usize = 4;

/// The H2OAutoML-style engine. See module docs.
pub struct H2oStyle {
    seed: u64,
    faults: FaultPlan,
    members: Vec<Box<dyn Classifier>>,
    meta: Option<GlmMetalearner>,
    /// Index of the best single model (used when stacking doesn't help).
    best_single: usize,
    threshold: f32,
}

impl H2oStyle {
    /// New engine with a deterministic seed (faults come from the
    /// `AUTOML_EM_FAULTS` environment variable, usually none).
    pub fn new(seed: u64) -> Self {
        Self::with_faults(seed, FaultPlan::from_env())
    }

    /// New engine with an explicit fault-injection plan (tests).
    pub fn with_faults(seed: u64, faults: FaultPlan) -> Self {
        Self {
            seed,
            faults,
            members: Vec::new(),
            meta: None,
            best_single: 0,
            threshold: 0.5,
        }
    }
}

impl AutoMlSystem for H2oStyle {
    fn name(&self) -> &'static str {
        "H2OAutoML"
    }

    fn fit_resumable(
        &mut self,
        train: &TabularData,
        valid: &TabularData,
        budget: &mut Budget,
        policy: &ResumePolicy,
        deadline: Deadline,
    ) -> Result<FitReport, TrialError> {
        let span = obs::span("automl.H2OAutoML.fit");
        let mut tracker = TrialTracker::new(self.name());
        let mut rng = Rng::new(self.seed ^ 0x420);
        let families = h2o_families();
        let valid_labels = valid.labels_bool();
        let mut leaderboard = Leaderboard::new();
        let positives = train.y.iter().filter(|&&v| v >= 0.5).count();
        let mut run = SearchRun::start(
            self.name(),
            self.seed,
            budget,
            &[
                &format!("families={families:?}"),
                &format!("max_models={MAX_MODELS} stack_top={STACK_TOP} k_folds={K_FOLDS}"),
                &format!(
                    "rows={} cols={} pos={positives} valid={}",
                    train.len(),
                    train.x.cols(),
                    valid.len()
                ),
            ],
            policy,
            deadline,
        )?;
        let mut deadline_cut = false;

        // --- fast random search -----------------------------------------
        // reserve a slice of the budget for the stacking stage
        let stack_reserve =
            K_FOLDS as f64 * fit_cost(ModelFamily::Gbm, train.len()) * STACK_TOP as f64 * 0.3;
        type Evaluated = (Candidate, Box<dyn Classifier>, Vec<f32>, f64);
        // --- plan the whole random grid on the driving thread: identical
        //     rng stream and budget arithmetic to a sequential search ---
        let seed = self.seed;
        let mut sim = budget.clone(); // replayed on `budget` below
        let mut planned: Vec<(Candidate, f64, u64)> = Vec::new();
        while planned.len() < MAX_MODELS {
            let candidate = Candidate::sample(&families, &mut rng);
            let cost = fit_cost(candidate.family, train.len());
            if sim.remaining() - cost < stack_reserve.min(sim.remaining() * 0.5)
                || !sim.can_afford(cost)
            {
                break;
            }
            sim.consume(cost);
            let idx = planned.len() as u64;
            planned.push((candidate, cost, idx));
        }

        // WAL intent records for the whole grid: one fsync
        for (candidate, cost, idx) in &planned {
            let name = candidate.build(seed.wrapping_add(*idx)).name();
            run.note_planned(*idx, &name, *cost);
        }
        run.sync();

        // --- independent fits: run the grid through the par pool, each
        //     inside the trial boundary so a failing candidate — panic,
        //     NaN score, injected fault — is quarantined without losing
        //     the worker or the grid. Journaled failures are restored
        //     without re-running ---
        let faults = &self.faults;
        let view = run.view();
        let engine = self.name();
        let fits = par::map(&planned, |(candidate, _, idx)| match view.failed(*idx) {
            Some(err) => (Err(err), 0.0),
            None => guard_trial_timed(engine, faults.get(*idx), view.token(), || {
                let mut model = candidate.build(seed.wrapping_add(*idx));
                model.fit(&train.x, &train.y)?;
                let probs = model.predict_proba(&valid.x);
                let (_, f1) = best_f1_threshold(&probs, &valid_labels);
                Ok((model, probs, f1))
            }),
        });

        // --- charge budget, journal outcomes and emit telemetry in
        //     submission order (replayed trials use their recorded
        //     charges) ---
        let mut evaluated: Vec<Evaluated> = Vec::new();
        for ((candidate, cost, idx), (fit, wall_ms)) in planned.into_iter().zip(fits) {
            let charged = run.charge(idx, cost * self.faults.cost_multiplier(idx));
            budget.consume(charged);
            match fit {
                Ok((model, probs, f1)) => {
                    run.record_done(idx, &model.name(), f1, charged)?;
                    tracker.record(candidate.family, &model.name(), f1, charged, wall_ms);
                    leaderboard.push(model.name(), f1, charged);
                    evaluated.push((candidate, model, probs, f1));
                }
                Err(err) => {
                    let name = candidate.build(seed.wrapping_add(idx)).name();
                    run.record_failed(idx, &name, &err, charged)?;
                    tracker.record_failure(candidate.family, &name, &err, charged, wall_ms);
                    leaderboard.push_failed(name, err, charged);
                }
            }
        }
        if evaluated.is_empty() {
            span.add_units(budget.used());
            return Err(all_failed_error(&leaderboard, budget, train.len()));
        }

        // rank by validation F1, keep the stack members (scores are
        // guard-validated finite, but keep the sort NaN-safe regardless)
        evaluated.sort_by(|a, b| linalg::stats::nan_worst_cmp(b.3, a.3));
        evaluated.truncate(STACK_TOP.max(1));

        // --- super learner ------------------------------------------------
        // leak-free metalearner features: out-of-fold probabilities
        let mut oof_cols: Vec<Vec<f32>> = Vec::new();
        // indices into `kept` that contributed an oof column — the stack
        // membership (NOT necessarily a prefix of `kept`: a member whose
        // fold refits fail is dropped from the stack but stays ranked)
        let mut oof_members: Vec<usize> = Vec::new();
        let mut kept: Vec<Evaluated> = Vec::new();
        for (cand, model, vprobs, f1) in evaluated {
            if run.deadline_expired() {
                run.note_deadline();
                deadline_cut = true;
                kept.push((cand, model, vprobs, f1));
                continue; // keep the member ranked, skip its oof refits
            }
            let oof_cost =
                K_FOLDS as f64 * fit_cost(cand.family, train.len() * (K_FOLDS - 1) / K_FOLDS) * 0.5; // folds are smaller and reuse binning work
            if budget.can_afford(oof_cost) {
                let mut fold_rng = rng.fork(oof_cols.len() as u64);
                // the member already fitted once, but its fold refits run
                // through the panic boundary too: a crashing fold drops
                // this member from the stacker, never the whole run
                let oof =
                    par::catch_panic(|| out_of_fold(model.as_ref(), train, K_FOLDS, &mut fold_rng));
                if let Ok(Ok((oof, _))) = oof {
                    budget.consume(oof_cost);
                    oof_cols.push(oof);
                    oof_members.push(kept.len());
                }
            }
            kept.push((cand, model, vprobs, f1));
        }

        let single_val = kept[0].2.clone();
        let (single_t, single_f1) = best_f1_threshold(&single_val, &valid_labels);
        let mut best = (single_f1, single_t, false);

        if oof_cols.len() >= 2 && !deadline_cut {
            let oof = Matrix::from_fn(train.len(), oof_cols.len(), |i, m| oof_cols[m][i]);
            let member_val: Vec<Vec<f32>> =
                oof_members.iter().map(|&i| kept[i].2.clone()).collect();
            // the super learner is a trial like any other: a degenerate
            // GLM solve is quarantined and the best single model wins
            let trial_idx = tracker.trials() as u64;
            run.note_planned(trial_idx, "super_learner[glm]", 0.0);
            run.sync();
            let token = run.token();
            let (outcome, wall_ms) = match run.replayed_failure(trial_idx) {
                Some(err) => (Err(err), 0.0),
                None => guard_trial_timed(self.name(), self.faults.get(trial_idx), &token, || {
                    let meta = GlmMetalearner::fit(&oof, &train.y, 1e-2);
                    let stacked_val = meta.predict(&member_val);
                    let (st, sf1) = best_f1_threshold(&stacked_val, &valid_labels);
                    Ok(((meta, st), stacked_val, sf1))
                }),
            };
            match outcome {
                Ok(((meta, st), _, sf1)) => {
                    run.record_done(trial_idx, "super_learner[glm]", sf1, 0.0)?;
                    tracker.record(ModelFamily::LogReg, "super_learner[glm]", sf1, 0.0, wall_ms);
                    leaderboard.push("super_learner[glm]".to_owned(), sf1, 0.0);
                    if sf1 >= best.0 {
                        best = (sf1, st, true);
                        self.meta = Some(meta);
                    }
                }
                Err(err) => {
                    run.record_failed(trial_idx, "super_learner[glm]", &err, 0.0)?;
                    tracker.record_failure(
                        ModelFamily::LogReg,
                        "super_learner[glm]",
                        &err,
                        0.0,
                        wall_ms,
                    );
                    leaderboard.push_failed("super_learner[glm]".to_owned(), err, 0.0);
                }
            }
        }

        if best.2 {
            // serve exactly the stacked members, in oof-column order
            let mut models: Vec<Option<Box<dyn Classifier>>> =
                kept.into_iter().map(|(_, m, _, _)| Some(m)).collect();
            self.members = oof_members
                .iter()
                .filter_map(|&i| models[i].take())
                .collect();
        } else {
            self.members = kept.into_iter().map(|(_, m, _, _)| m).collect();
        }
        self.best_single = 0;
        self.threshold = best.1;
        span.add_units(budget.used());
        Ok(FitReport {
            system: self.name(),
            units_used: budget.used(),
            hours_used: budget.used_hours(),
            val_f1: best.0,
            threshold: best.1,
            leaderboard,
        })
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        assert!(!self.members.is_empty(), "predict before fit");
        match &self.meta {
            Some(meta) => {
                let base: Vec<Vec<f32>> = self.members.iter().map(|m| m.predict_proba(x)).collect();
                meta.predict(&base)
            }
            None => self.members[self.best_single].predict_proba(x),
        }
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::metrics::f1_score;

    fn blob_data(n: usize, seed: u64) -> TabularData {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = rng.chance(0.25);
            let c = if pos { 1.3f32 } else { -1.3 };
            rows.push(vec![c + rng.normal(), rng.normal()]);
            y.push(if pos { 1.0 } else { 0.0 });
        }
        TabularData::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn end_to_end() {
        let train = blob_data(300, 1);
        let valid = blob_data(120, 2);
        let test = blob_data(120, 3);
        let mut sys = H2oStyle::new(11);
        let mut budget = Budget::hours(1.0).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(report.leaderboard.len() >= 3);
        let f1 = f1_score(&sys.predict(&test.x), &test.labels_bool());
        assert!(f1 > 85.0, "F1 {f1}");
    }

    #[test]
    fn can_finish_under_budget() {
        // tiny dataset: the MAX_MODELS cap stops the search early
        let train = blob_data(80, 4);
        let valid = blob_data(40, 5);
        let mut sys = H2oStyle::new(2);
        let mut budget = Budget::hours(10.0).unwrap();
        sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(!budget.exhausted());
        assert!(budget.used_hours() < 5.0);
    }

    #[test]
    fn deterministic() {
        let train = blob_data(200, 6);
        let valid = blob_data(80, 7);
        let run = || {
            let mut sys = H2oStyle::new(3);
            let mut budget = Budget::hours(1.0).unwrap();
            sys.fit(&train, &valid, &mut budget).unwrap();
            sys.predict_proba(&valid.x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn stacking_never_selected_when_worse() {
        // with a nearly perfect single model the chosen val F1 must be at
        // least the best single model's F1
        let train = blob_data(250, 8);
        let valid = blob_data(100, 9);
        let mut sys = H2oStyle::new(4);
        let mut budget = Budget::hours(2.0).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        let best_single = report
            .leaderboard
            .entries()
            .iter()
            .filter(|e| !e.model.starts_with("super_learner"))
            .map(|e| e.val_f1)
            .fold(f64::MIN, f64::max);
        assert!(report.val_f1 >= best_single - 1e-9);
    }
}
