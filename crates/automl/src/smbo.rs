//! Sequential model-based optimization (SMBO) with a random-forest
//! surrogate — the SMAC recipe that powers AutoSklearn.
//!
//! The surrogate is a tiny exact-split **regression forest** (evaluation
//! histories hold tens of points, so exhaustive split search is cheap).
//! Tree-to-tree disagreement provides the predictive variance that the
//! expected-improvement acquisition needs.
//!
//! Crash-safety note: the surrogate runs on the *driving* thread during
//! batch planning, between two wall-clock deadline checks, and is cheap
//! enough (milliseconds) that it needs no cancellation point of its own.
//! It is deliberately never journaled — on resume it is rebuilt from the
//! replayed evaluation history, which the byte-identity contract
//! guarantees is identical to the history of the uninterrupted run.

use crate::space::Candidate;
use linalg::stats::expected_improvement;
use linalg::{Matrix, Rng};

/// One node of a surrogate regression tree.
#[derive(Debug, Clone)]
enum SNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

#[derive(Debug, Clone)]
struct STree {
    nodes: Vec<SNode>,
}

impl STree {
    fn fit(x: &Matrix, y: &[f64], indices: &[usize], max_depth: usize, rng: &mut Rng) -> STree {
        let mut nodes = Vec::new();
        grow(x, y, indices.to_vec(), 0, max_depth, rng, &mut nodes);
        STree { nodes }
    }

    fn predict(&self, row: &[f32]) -> f64 {
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                SNode::Leaf { value } => return *value,
                SNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

fn mean_of(y: &[f64], idx: &[usize]) -> f64 {
    idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64
}

fn sse_of(y: &[f64], idx: &[usize], mean: f64) -> f64 {
    idx.iter().map(|&i| (y[i] - mean) * (y[i] - mean)).sum()
}

fn grow(
    x: &Matrix,
    y: &[f64],
    indices: Vec<usize>,
    depth: usize,
    max_depth: usize,
    rng: &mut Rng,
    nodes: &mut Vec<SNode>,
) -> usize {
    let mean = mean_of(y, &indices);
    if depth >= max_depth || indices.len() < 4 {
        nodes.push(SNode::Leaf { value: mean });
        return nodes.len() - 1;
    }
    let parent_sse = sse_of(y, &indices, mean);
    // random subset of features, exact threshold scan within each
    let d = x.cols();
    let k = ((d as f64).sqrt().ceil() as usize).max(1);
    let features = rng.sample_indices(d, k.min(d));
    let mut best: Option<(usize, f32, f64)> = None;
    for &j in &features {
        let mut vals: Vec<(f32, usize)> = indices.iter().map(|&i| (x[(i, j)], i)).collect();
        vals.sort_by(|a, b| linalg::stats::nan_last_cmp_f32(a.0, b.0));
        for s in 1..vals.len() {
            if vals[s].0 == vals[s - 1].0 {
                continue;
            }
            let threshold = (vals[s].0 + vals[s - 1].0) / 2.0;
            let left: Vec<usize> = vals[..s].iter().map(|&(_, i)| i).collect();
            let right: Vec<usize> = vals[s..].iter().map(|&(_, i)| i).collect();
            let lm = mean_of(y, &left);
            let rm = mean_of(y, &right);
            let gain = parent_sse - sse_of(y, &left, lm) - sse_of(y, &right, rm);
            if gain > 1e-12 && best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((j, threshold, gain));
            }
        }
    }
    let Some((feature, threshold, _)) = best else {
        nodes.push(SNode::Leaf { value: mean });
        return nodes.len() - 1;
    };
    let (li, ri): (Vec<usize>, Vec<usize>) = indices
        .into_iter()
        .partition(|&i| x[(i, feature)] <= threshold);
    let slot = nodes.len();
    nodes.push(SNode::Leaf { value: mean });
    let left = grow(x, y, li, depth + 1, max_depth, rng, nodes);
    let right = grow(x, y, ri, depth + 1, max_depth, rng, nodes);
    nodes[slot] = SNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    slot
}

/// Random-forest surrogate over candidate encodings.
pub struct Surrogate {
    trees: Vec<STree>,
}

impl Surrogate {
    /// Fit `n_trees` bootstrapped regression trees on `(encoding, score)`
    /// history.
    ///
    /// Every tree owns an rng forked from `rng` *before* any tree is
    /// grown, so the trees are independent tasks: they fit through the
    /// `par` worker pool and the forest is identical at any thread count.
    pub fn fit(encodings: &Matrix, scores: &[f64], n_trees: usize, rng: &mut Rng) -> Surrogate {
        assert_eq!(encodings.rows(), scores.len(), "history length mismatch");
        assert!(encodings.rows() >= 2, "need at least two observations");
        let n = encodings.rows();
        let forks: Vec<Rng> = (0..n_trees).map(|t| rng.fork(t as u64)).collect();
        let trees = par::map(&forks, |fork| {
            let mut tree_rng = fork.clone();
            let idx: Vec<usize> = (0..n).map(|_| tree_rng.below(n)).collect();
            STree::fit(encodings, scores, &idx, 8, &mut tree_rng)
        });
        Surrogate { trees }
    }

    /// Posterior mean and standard deviation at one encoding.
    pub fn predict(&self, encoding: &[f32]) -> (f64, f64) {
        let preds: Vec<f64> = self.trees.iter().map(|t| t.predict(encoding)).collect();
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        let var = preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
        (mean, var.sqrt())
    }

    /// Expected improvement of `encoding` over the incumbent `best`.
    pub fn ei(&self, encoding: &[f32], best: f64) -> f64 {
        let (mu, sigma) = self.predict(encoding);
        expected_improvement(mu, sigma, best)
    }
}

/// Propose the next candidate: sample a pool of random + perturbed points
/// and return the one maximizing expected improvement.
pub fn propose(
    surrogate: &Surrogate,
    families: &[crate::budget::ModelFamily],
    history: &[(Candidate, f64)],
    rng: &mut Rng,
) -> Candidate {
    let best_score = history
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut pool: Vec<Candidate> = (0..48).map(|_| Candidate::sample(families, rng)).collect();
    // local search around the current top-3
    let mut top: Vec<&(Candidate, f64)> = history.iter().collect();
    top.sort_by(|a, b| linalg::stats::nan_worst_cmp(b.1, a.1));
    for (cand, _) in top.iter().take(3) {
        for _ in 0..8 {
            pool.push(cand.perturb(0.15, rng));
        }
    }
    pool.into_iter()
        .max_by(|a, b| {
            let ea = surrogate.ei(&a.encode(families), best_score);
            let eb = surrogate.ei(&b.encode(families), best_score);
            // a NaN EI (degenerate surrogate) must never win the argmax
            linalg::stats::nan_worst_cmp(ea, eb)
        })
        // unreachable (the pool always holds 48+ samples), but panic-free
        .unwrap_or_else(|| Candidate::sample(families, rng))
}

/// Meta-learning warm starts: hand-picked configurations that historically
/// work well on EM-shaped data (imbalanced, dense, moderately sized).
/// AutoSklearn seeds its SMBO run with configurations retrieved by dataset
/// meta-features; we condition on the two features that matter at our
/// scale: training-set size and imbalance.
pub fn warm_starts(n_rows: usize, positive_ratio: f64) -> Vec<Candidate> {
    use crate::budget::ModelFamily::*;
    let mut out = Vec::new();
    // a solid GBM is the best first guess on tabular data of any size
    out.push(Candidate {
        family: Gbm,
        params: [0.5, 0.5, 0.5, 1.0],
    });
    if n_rows < 1500 {
        // tiny datasets: strong regularization / simple models first
        out.push(Candidate {
            family: LogReg,
            params: [0.6, 0.5, 0.5, 1.0],
        });
        out.push(Candidate {
            family: RandomForest,
            params: [0.5, 0.3, 0.5, 0.6],
        });
    } else {
        out.push(Candidate {
            family: RandomForest,
            params: [0.7, 0.7, 0.4, 0.1],
        });
        out.push(Candidate {
            family: ExtraTrees,
            params: [0.7, 0.7, 0.4, 0.1],
        });
    }
    if positive_ratio < 0.15 {
        // heavy imbalance: balanced linear model probes the threshold geometry
        out.push(Candidate {
            family: LinearSvm,
            params: [0.4, 0.6, 1.0, 0.5],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ModelFamily;
    use crate::space::{sklearn_families, PARAM_DIMS};

    /// Quadratic test function on the cube: max at params = (0.7, 0.2, …).
    fn objective(c: &Candidate) -> f64 {
        let target = [0.7, 0.2, 0.5, 0.9];
        1.0 - c
            .params
            .iter()
            .zip(&target)
            .map(|(p, t)| (p - t) * (p - t))
            .sum::<f64>()
    }

    fn encode_history(
        history: &[(Candidate, f64)],
        families: &[ModelFamily],
    ) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f32>> = history.iter().map(|(c, _)| c.encode(families)).collect();
        let y: Vec<f64> = history.iter().map(|(_, s)| *s).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn surrogate_fits_smooth_function() {
        let families = vec![ModelFamily::Gbm];
        let mut rng = Rng::new(1);
        let history: Vec<(Candidate, f64)> = (0..60)
            .map(|_| {
                let c = Candidate::sample(&families, &mut rng);
                let s = objective(&c);
                (c, s)
            })
            .collect();
        let (x, y) = encode_history(&history, &families);
        let s = Surrogate::fit(&x, &y, 20, &mut rng);
        // prediction at a fresh point should correlate with the truth
        let mut errs = Vec::new();
        for _ in 0..30 {
            let c = Candidate::sample(&families, &mut rng);
            let (mu, _) = s.predict(&c.encode(&families));
            errs.push((mu - objective(&c)).abs());
        }
        let mae: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mae < 0.15, "MAE {mae}");
    }

    #[test]
    fn smbo_beats_random_on_budgeted_search() {
        let families = vec![ModelFamily::Gbm];
        let mut rng = Rng::new(2);
        // SMBO loop
        let mut history: Vec<(Candidate, f64)> = (0..6)
            .map(|_| {
                let c = Candidate::sample(&families, &mut rng);
                let s = objective(&c);
                (c, s)
            })
            .collect();
        for _ in 0..25 {
            let (x, y) = encode_history(&history, &families);
            let surrogate = Surrogate::fit(&x, &y, 15, &mut rng);
            let next = propose(&surrogate, &families, &history, &mut rng);
            let s = objective(&next);
            history.push((next, s));
        }
        let smbo_best = history.iter().map(|(_, s)| *s).fold(f64::MIN, f64::max);

        // pure random search with the same total budget
        let mut rng2 = Rng::new(3);
        let random_best = (0..31)
            .map(|_| objective(&Candidate::sample(&families, &mut rng2)))
            .fold(f64::MIN, f64::max);

        assert!(
            smbo_best >= random_best - 0.02,
            "smbo {smbo_best} vs random {random_best}"
        );
        assert!(smbo_best > 0.95, "smbo best {smbo_best}");
    }

    #[test]
    fn variance_shrinks_with_data_density() {
        let families = vec![ModelFamily::Gbm];
        let mut rng = Rng::new(4);
        let make_history = |n: usize, rng: &mut Rng| -> Vec<(Candidate, f64)> {
            (0..n)
                .map(|_| {
                    let c = Candidate::sample(&families, rng);
                    let s = objective(&c);
                    (c, s)
                })
                .collect()
        };
        let sparse = make_history(8, &mut rng);
        let dense = make_history(120, &mut rng);
        let probe = Candidate {
            family: ModelFamily::Gbm,
            params: [0.5; PARAM_DIMS],
        };
        let enc = probe.encode(&families);
        let (xs, ys) = encode_history(&sparse, &families);
        let (xd, yd) = encode_history(&dense, &families);
        let ss = Surrogate::fit(&xs, &ys, 25, &mut rng);
        let sd = Surrogate::fit(&xd, &yd, 25, &mut rng);
        let (_, sig_sparse) = ss.predict(&enc);
        let (_, sig_dense) = sd.predict(&enc);
        assert!(
            sig_dense <= sig_sparse + 0.05,
            "{sig_dense} vs {sig_sparse}"
        );
    }

    #[test]
    fn warm_starts_adapt_to_meta_features() {
        let tiny = warm_starts(400, 0.1);
        let large = warm_starts(20_000, 0.2);
        assert!(tiny.iter().any(|c| c.family == ModelFamily::LogReg));
        assert!(large.iter().any(|c| c.family == ModelFamily::ExtraTrees));
        // imbalanced case adds the balanced SVM probe
        assert!(tiny.iter().any(|c| c.family == ModelFamily::LinearSvm));
        assert!(!warm_starts(20_000, 0.4)
            .iter()
            .any(|c| c.family == ModelFamily::LinearSvm));
    }

    #[test]
    fn propose_prefers_high_ei_region() {
        let families = sklearn_families();
        let mut rng = Rng::new(5);
        let history: Vec<(Candidate, f64)> = (0..40)
            .map(|_| {
                let c = Candidate::sample(&families, &mut rng);
                let s = objective(&c);
                (c, s)
            })
            .collect();
        let (x, y) = encode_history(&history, &families);
        let surrogate = Surrogate::fit(&x, &y, 20, &mut rng);
        let proposal = propose(&surrogate, &families, &history, &mut rng);
        // proposal should not be a terrible point
        assert!(objective(&proposal) > 0.3, "{}", objective(&proposal));
    }
}
