//! Successive halving: a budget-aware search strategy that trains many
//! cheap configurations on a data subsample and promotes only the top
//! fraction to larger subsamples.
//!
//! Not one of the paper's three systems — included as the natural "next
//! generation" search the AutoML literature proposes (Hyperband/ASHA class)
//! and used by the `ablations` bench to compare search strategies under
//! the same budget accounting.
//!
//! Each rung's population sweep is embarrassingly parallel and runs
//! through the `par` worker pool; the affordable prefix of the rung is
//! planned on the driving thread with a simulated budget and charges are
//! replayed in submission order afterwards, so the report is byte-for-byte
//! the one a sequential sweep produces, at any thread count. Rungs are
//! journaled through [`crate::journal`] like every other engine, so an
//! interrupted halving run resumes mid-rung.

use crate::budget::{fit_cost, Budget};
use crate::fault::FaultPlan;
use crate::journal::{ResumePolicy, SearchRun};
use crate::leaderboard::{FitReport, Leaderboard};
use crate::space::{sklearn_families, Candidate};
use crate::telemetry::TrialTracker;
use crate::trial::{all_failed_error, guard_trial_timed};
use crate::AutoMlSystem;
use linalg::{Matrix, Rng};
use ml::cv::stratified_holdout;
use ml::dataset::TabularData;
use ml::metrics::best_f1_threshold;
use ml::{Classifier, TrialError};
use par::Deadline;

/// Successive-halving configuration.
#[derive(Debug, Clone, Copy)]
pub struct HalvingConfig {
    /// Configurations sampled in the first rung.
    pub initial_population: usize,
    /// Fraction promoted between rungs (η⁻¹; 1/3 is the ASHA default).
    pub keep_fraction: f64,
    /// Training-subsample fraction of the first rung (doubles per rung,
    /// capped at 1.0).
    pub initial_subsample: f64,
}

impl Default for HalvingConfig {
    fn default() -> Self {
        Self {
            initial_population: 18,
            keep_fraction: 1.0 / 3.0,
            initial_subsample: 0.25,
        }
    }
}

/// The successive-halving engine.
pub struct SuccessiveHalving {
    seed: u64,
    config: HalvingConfig,
    faults: FaultPlan,
    best: Option<Box<dyn Classifier>>,
    threshold: f32,
}

impl SuccessiveHalving {
    /// New engine with a deterministic seed and default rungs (faults come
    /// from the `AUTOML_EM_FAULTS` environment variable, usually none).
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, HalvingConfig::default())
    }

    /// New engine with explicit halving parameters.
    pub fn with_config(seed: u64, config: HalvingConfig) -> Self {
        Self {
            seed,
            config,
            faults: FaultPlan::from_env(),
            best: None,
            threshold: 0.5,
        }
    }

    /// New engine with an explicit fault-injection plan (tests).
    pub fn with_faults(seed: u64, faults: FaultPlan) -> Self {
        Self {
            faults,
            ..Self::new(seed)
        }
    }
}

/// One evaluated configuration: the candidate, its fitted model, its
/// validation probabilities and its validation score.
type Evaluated = (Candidate, Box<dyn Classifier>, Vec<f32>, f64);

impl AutoMlSystem for SuccessiveHalving {
    fn name(&self) -> &'static str {
        "SuccessiveHalving"
    }

    fn fit_resumable(
        &mut self,
        train: &TabularData,
        valid: &TabularData,
        budget: &mut Budget,
        policy: &ResumePolicy,
        deadline: Deadline,
    ) -> Result<FitReport, TrialError> {
        let span = obs::span("automl.SuccessiveHalving.fit");
        let mut tracker = TrialTracker::new(self.name());
        let mut rng = Rng::new(self.seed ^ 0x5A1);
        let families = sklearn_families();
        let valid_labels = valid.labels_bool();
        let mut leaderboard = Leaderboard::new();
        let positives = train.y.iter().filter(|&&v| v >= 0.5).count();
        let mut run = SearchRun::start(
            self.name(),
            self.seed,
            budget,
            &[
                &format!("families={families:?}"),
                &format!(
                    "rows={} cols={} pos={positives} valid={}",
                    train.len(),
                    train.x.cols(),
                    valid.len()
                ),
                &format!(
                    "pop={} keep={:?} subsample={:?}",
                    self.config.initial_population,
                    self.config.keep_fraction,
                    self.config.initial_subsample
                ),
            ],
            policy,
            deadline,
        )?;

        // rung 0 population
        let mut population: Vec<(Candidate, f64)> = (0..self.config.initial_population)
            .map(|_| (Candidate::sample(&families, &mut rng), f64::MIN))
            .collect();
        let mut subsample = self.config.initial_subsample;
        let mut survivors: Vec<Evaluated> = Vec::new();
        let mut eval_idx = 0u64;
        let mut rung = 0usize;
        loop {
            // wall-clock ceiling: stop opening new rungs once the deadline
            // has passed; the previous rung's survivors are the result
            if run.deadline_expired() {
                run.note_deadline();
                break;
            }
            let rows = ((train.len() as f64 * subsample) as usize)
                .clamp(2.max(valid_labels.len().min(8)), train.len());
            // deterministic per-rung subsample (stratified so tiny rungs
            // keep both classes)
            let subset = if rows < train.len() {
                let mut sub_rng = rng.fork(rung as u64);
                let (keep, _) = stratified_holdout(
                    &train.y,
                    1.0 - rows as f64 / train.len() as f64,
                    &mut sub_rng,
                );
                train.select(&keep)
            } else {
                train.clone()
            };
            // --- plan the affordable prefix of the rung (same order and
            //     budget arithmetic as a sequential sweep) ---
            let seed = self.seed;
            let mut sim = budget.clone(); // replayed on `budget` below
            let mut planned: Vec<(usize, f64, u64)> = Vec::new();
            for (pop_idx, (cand, _)) in population.iter().enumerate() {
                let cost = fit_cost(cand.family, subset.len());
                if !sim.can_afford(cost) {
                    break;
                }
                sim.consume(cost);
                planned.push((pop_idx, cost, eval_idx));
                eval_idx += 1;
            }

            // WAL intent records: one fsync per rung
            for &(pop_idx, cost, idx) in &planned {
                let name = population[pop_idx].0.build(seed.wrapping_add(idx)).name();
                run.note_planned(idx, &format!("rung{rung}[{name}]"), cost);
            }
            run.sync();

            // --- the whole rung is an independent population sweep: fit
            //     it through the par pool (each fit inside the trial
            //     boundary), results in submission order. Failures
            //     replayed from the journal are restored without
            //     re-running ---
            let faults = &self.faults;
            let view = run.view();
            let engine = self.name();
            let fits = par::map(&planned, |&(pop_idx, _, idx)| match view.failed(idx) {
                Some(err) => (Err(err), 0.0),
                None => guard_trial_timed(engine, faults.get(idx), view.token(), || {
                    let mut model = population[pop_idx].0.build(seed.wrapping_add(idx));
                    model.fit(&subset.x, &subset.y)?;
                    let probs = model.predict_proba(&valid.x);
                    let (_, f1) = best_f1_threshold(&probs, &valid_labels);
                    Ok((model, probs, f1))
                }),
            });

            // --- charge budget, journal outcomes and emit telemetry in
            //     submission order (replayed trials charge their recorded
            //     units, so nothing is double-charged on resume) ---
            let mut rung_results: Vec<Evaluated> = Vec::new();
            for (&(pop_idx, cost, idx), (fit, wall_ms)) in planned.iter().zip(fits) {
                let charged = run.charge(idx, cost * self.faults.cost_multiplier(idx));
                budget.consume(charged);
                match fit {
                    Ok((model, probs, f1)) => {
                        let label = format!("rung{rung}[{}]", model.name());
                        run.record_done(idx, &label, f1, charged)?;
                        tracker.record(population[pop_idx].0.family, &label, f1, charged, wall_ms);
                        leaderboard.push(label, f1, charged);
                        population[pop_idx].1 = f1;
                        rung_results.push((population[pop_idx].0.clone(), model, probs, f1));
                    }
                    Err(err) => {
                        // quarantined: the configuration keeps its f64::MIN
                        // score and is never promoted to the next rung
                        let name = format!(
                            "rung{rung}[{}]",
                            population[pop_idx].0.build(seed.wrapping_add(idx)).name()
                        );
                        run.record_failed(idx, &name, &err, charged)?;
                        tracker.record_failure(
                            population[pop_idx].0.family,
                            &name,
                            &err,
                            charged,
                            wall_ms,
                        );
                        leaderboard.push_failed(name, err, charged);
                    }
                }
            }
            if rung_results.is_empty() {
                // nothing usable came out of this rung (unaffordable, or
                // every attempted fit failed); keep the previous rung's
                // survivors as the final population
                break;
            }
            survivors = rung_results;
            // promote the top fraction (scores are guard-validated finite,
            // but keep the sort NaN-safe regardless)
            survivors.sort_by(|a, b| linalg::stats::nan_worst_cmp(b.3, a.3));
            let keep =
                ((survivors.len() as f64 * self.config.keep_fraction).ceil() as usize).max(1);
            if keep == 1 || subsample >= 1.0 || budget.exhausted() {
                break;
            }
            population = survivors
                .iter()
                .take(keep)
                .map(|(c, _, _, s)| (c.clone(), *s))
                .collect();
            subsample = (subsample * 2.0).min(1.0);
            rung += 1;
        }

        if survivors.is_empty() {
            span.add_units(budget.used());
            return Err(all_failed_error(&leaderboard, budget, train.len()));
        }
        let (_, model, probs, _) = survivors.swap_remove(0);
        let (threshold, val_f1) = best_f1_threshold(&probs, &valid_labels);
        self.best = Some(model);
        self.threshold = threshold;
        span.add_units(budget.used());
        Ok(FitReport {
            system: self.name(),
            units_used: budget.used(),
            hours_used: budget.used_hours(),
            val_f1,
            threshold,
            leaderboard,
        })
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        // usage-contract violation, not a trial failure: fit() must have
        // returned Ok before predicting
        #[allow(clippy::expect_used)]
        self.best
            .as_ref()
            .expect("predict before fit")
            .predict_proba(x)
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(n: usize, seed: u64) -> TabularData {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = rng.chance(0.3);
            let c = if pos { 1.3f32 } else { -1.3 };
            rows.push(vec![c + rng.normal(), -c + rng.normal()]);
            y.push(if pos { 1.0 } else { 0.0 });
        }
        TabularData::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn end_to_end() {
        let train = blob_data(400, 1);
        let valid = blob_data(150, 2);
        let test = blob_data(150, 3);
        let mut sys = SuccessiveHalving::new(7);
        let mut budget = Budget::hours(1.0).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(report.leaderboard.len() >= HalvingConfig::default().initial_population / 2);
        let f1 = ml::metrics::f1_score(&sys.predict(&test.x), &test.labels_bool());
        assert!(f1 > 85.0, "F1 {f1}");
    }

    #[test]
    fn rungs_promote_fewer_models_on_more_data() {
        let train = blob_data(600, 4);
        let valid = blob_data(150, 5);
        let mut sys = SuccessiveHalving::new(3);
        let mut budget = Budget::hours(2.0).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        // rung labels must show at least two rungs and rung-1 strictly
        // smaller than rung-0
        let rung0 = report
            .leaderboard
            .entries()
            .iter()
            .filter(|e| e.model.starts_with("rung0"))
            .count();
        let rung1 = report
            .leaderboard
            .entries()
            .iter()
            .filter(|e| e.model.starts_with("rung1"))
            .count();
        assert!(rung0 > 0);
        assert!(rung1 > 0, "expected a second rung");
        assert!(rung1 < rung0, "rung1 {rung1} !< rung0 {rung0}");
    }

    #[test]
    fn deterministic() {
        let train = blob_data(200, 6);
        let valid = blob_data(80, 7);
        let run = || {
            let mut sys = SuccessiveHalving::new(5);
            let mut budget = Budget::hours(0.5).unwrap();
            sys.fit(&train, &valid, &mut budget).unwrap();
            sys.predict_proba(&valid.x)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn cheap_budget_still_yields_a_model() {
        let train = blob_data(300, 8);
        let valid = blob_data(100, 9);
        let mut sys = SuccessiveHalving::new(1);
        let mut budget = Budget::units(1.5).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(!report.leaderboard.is_empty());
        assert!((0.0..=1.0).contains(&sys.threshold()));
    }
}
