//! Ensembling strategies: greedy selection (AutoSklearn), out-of-fold
//! stacking (AutoGluon) and the GLM super learner (H2O).

use linalg::decomp::ridge_solve;
use linalg::{Matrix, Rng};
use ml::cv::stratified_kfold;
use ml::dataset::TabularData;
use ml::metrics::f1_at_threshold;
use ml::{Classifier, TrialError};

/// Greedy (Caruana) ensemble selection: repeatedly add the model — with
/// replacement — whose inclusion maximizes validation F1 of the averaged
/// probabilities. Returns per-model weights summing to 1.
///
/// This is AutoSklearn's post-processing step verbatim.
pub fn greedy_selection(
    val_probs: &[Vec<f32>],
    val_labels: &[bool],
    max_members: usize,
) -> Vec<f32> {
    assert!(!val_probs.is_empty(), "no models to select from");
    let n = val_probs[0].len();
    assert!(
        val_probs.iter().all(|p| p.len() == n),
        "ragged probabilities"
    );
    let mut counts = vec![0usize; val_probs.len()];
    let mut ensemble_sum = vec![0.0f32; n];
    let mut members = 0usize;
    let mut best_f1 = -1.0f64;
    for _ in 0..max_members {
        let mut best_add: Option<(usize, f64)> = None;
        for (m, probs) in val_probs.iter().enumerate() {
            // score of ensemble ∪ {m}
            let scale = 1.0 / (members + 1) as f32;
            let cand: Vec<f32> = ensemble_sum
                .iter()
                .zip(probs)
                .map(|(&s, &p)| (s + p) * scale)
                .collect();
            let f1 = best_f1_over_thresholds(&cand, val_labels);
            if best_add.is_none_or(|(_, b)| f1 > b) {
                best_add = Some((m, f1));
            }
        }
        // `best_add` is always Some (val_probs is non-empty), but stay
        // panic-free on the search path
        let Some((m, f1)) = best_add else { break };
        if f1 <= best_f1 && members >= 1 {
            break; // no further improvement
        }
        best_f1 = f1;
        counts[m] += 1;
        for (s, &p) in ensemble_sum.iter_mut().zip(&val_probs[m]) {
            *s += p;
        }
        members += 1;
    }
    let total = members.max(1) as f32;
    counts.iter().map(|&c| c as f32 / total).collect()
}

/// Max F1 over a coarse threshold sweep (selection metric — cheaper than
/// the exact sweep and smooth enough for greedy selection).
fn best_f1_over_thresholds(probs: &[f32], labels: &[bool]) -> f64 {
    let mut best: f64 = 0.0;
    for t in 1..20 {
        let thr = t as f32 / 20.0;
        best = best.max(f1_at_threshold(probs, labels, thr));
    }
    best
}

/// Weighted average of model probabilities.
pub fn weighted_average(probs: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    assert_eq!(probs.len(), weights.len(), "weights/models mismatch");
    assert!(!probs.is_empty(), "empty ensemble");
    let n = probs[0].len();
    let mut out = vec![0.0f32; n];
    let wsum: f32 = weights.iter().sum();
    let norm = if wsum > 0.0 { wsum } else { 1.0 };
    for (p, &w) in probs.iter().zip(weights) {
        for (o, &v) in out.iter_mut().zip(p) {
            *o += v * w / norm;
        }
    }
    out
}

/// What [`out_of_fold`] yields on success: one out-of-fold probability
/// per training row, plus the per-fold fitted models.
pub type OofResult = Result<(Vec<f32>, Vec<Box<dyn Classifier>>), TrialError>;

/// Out-of-fold predictions: train a fresh copy of `template` on each
/// k-fold train side and predict its validation side. Returns one
/// probability per training row, plus the per-fold fitted models. Errors
/// if any fold's fit fails (e.g. a fold lost all of one class).
pub fn out_of_fold(
    template: &dyn Classifier,
    data: &TabularData,
    k: usize,
    rng: &mut Rng,
) -> OofResult {
    let folds = stratified_kfold(&data.y, k, rng);
    let mut oof = vec![0.0f32; data.len()];
    let mut models = Vec::with_capacity(k);
    for (train_idx, valid_idx) in folds {
        let train = data.select(&train_idx);
        let mut model = template.fresh();
        model.fit(&train.x, &train.y)?;
        let valid_x = data.x.select_rows(&valid_idx);
        let preds = model.predict_proba(&valid_x);
        for (&i, &p) in valid_idx.iter().zip(&preds) {
            oof[i] = p;
        }
        models.push(model);
    }
    Ok((oof, models))
}

/// A bagged base model: the average of its per-fold members (AutoGluon
/// serves the bag average at inference time).
pub struct BaggedModel {
    members: Vec<Box<dyn Classifier>>,
    /// Out-of-fold probabilities on the training data (stacker features).
    pub oof: Vec<f32>,
    name: String,
}

impl BaggedModel {
    /// Bag `template` over `k` stratified folds of `data`. Errors if any
    /// fold's fit fails.
    pub fn fit(
        template: &dyn Classifier,
        data: &TabularData,
        k: usize,
        rng: &mut Rng,
    ) -> Result<Self, TrialError> {
        let (oof, members) = out_of_fold(template, data, k, rng)?;
        Ok(Self {
            members,
            oof,
            name: template.name(),
        })
    }

    /// Average probability across fold members.
    pub fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        let mut out = vec![0.0f32; x.rows()];
        for m in &self.members {
            for (o, p) in out.iter_mut().zip(m.predict_proba(x)) {
                *o += p;
            }
        }
        let inv = 1.0 / self.members.len() as f32;
        out.iter_mut().for_each(|o| *o *= inv);
        out
    }

    /// Base-model name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Ridge-GLM metalearner over base-model probabilities — the H2O super
/// learner. Weights are fitted on out-of-fold probabilities (never on
/// in-fold ones, which would leak) with an intercept term.
pub struct GlmMetalearner {
    /// Per-base-model coefficients.
    pub coefs: Vec<f32>,
    /// Intercept.
    pub intercept: f32,
}

impl GlmMetalearner {
    /// Fit on the `(n_rows × n_models)` out-of-fold probability matrix.
    pub fn fit(oof: &Matrix, y: &[f32], lambda: f32) -> Self {
        // design matrix with intercept column
        let ones = Matrix::full(oof.rows(), 1, 1.0);
        let design = ones.hstack(oof);
        let w = ridge_solve(&design, y, lambda);
        Self {
            intercept: w[0],
            coefs: w[1..].to_vec(),
        }
    }

    /// Combine base probabilities into a final score, clamped to `[0, 1]`.
    pub fn predict(&self, base_probs: &[Vec<f32>]) -> Vec<f32> {
        assert_eq!(base_probs.len(), self.coefs.len(), "model count mismatch");
        let n = base_probs.first().map_or(0, Vec::len);
        let mut out = vec![self.intercept; n];
        for (probs, &c) in base_probs.iter().zip(&self.coefs) {
            for (o, &p) in out.iter_mut().zip(probs) {
                *o += c * p;
            }
        }
        out.iter_mut().for_each(|o| *o = o.clamp(0.0, 1.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::linear::{LinearConfig, LogisticRegression};

    fn labels(n: usize) -> Vec<bool> {
        (0..n).map(|i| i % 3 == 0).collect()
    }

    #[test]
    fn greedy_prefers_the_good_model() {
        let y = labels(60);
        let perfect: Vec<f32> = y.iter().map(|&b| if b { 0.9 } else { 0.1 }).collect();
        let noise: Vec<f32> = (0..60).map(|i| ((i * 37) % 100) as f32 / 100.0).collect();
        let anti: Vec<f32> = y.iter().map(|&b| if b { 0.1 } else { 0.9 }).collect();
        let w = greedy_selection(&[noise, perfect, anti], &y, 10);
        assert!(w[1] > 0.8, "{w:?}");
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn greedy_combines_complementary_models() {
        // model A perfect on first half, random on second; B the reverse
        let y = labels(80);
        let a: Vec<f32> = y
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                if i < 40 {
                    if b {
                        0.9
                    } else {
                        0.1
                    }
                } else {
                    0.5
                }
            })
            .collect();
        let b: Vec<f32> = y
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                if i >= 40 {
                    if l {
                        0.9
                    } else {
                        0.1
                    }
                } else {
                    0.5
                }
            })
            .collect();
        let w = greedy_selection(&[a.clone(), b.clone()], &y, 12);
        // both should participate
        assert!(w[0] > 0.2 && w[1] > 0.2, "{w:?}");
        let combined = weighted_average(&[a, b], &w);
        let f1 = best_f1_over_thresholds(&combined, &y);
        assert!(f1 > 95.0, "{f1}");
    }

    #[test]
    fn weights_form_simplex() {
        let y = labels(30);
        let models: Vec<Vec<f32>> = (0..5)
            .map(|m| {
                (0..30)
                    .map(|i| ((i * (m + 2)) % 10) as f32 / 10.0)
                    .collect()
            })
            .collect();
        let w = greedy_selection(&models, &y, 8);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert!(w.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn oof_has_no_leakage_shape() {
        // every row gets exactly one OOF prediction; model count == k
        let mut rng = Rng::new(1);
        let rows: Vec<Vec<f32>> = (0..40).map(|i| vec![i as f32, (i % 7) as f32]).collect();
        let y: Vec<f32> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let data = TabularData::new(Matrix::from_rows(&rows), y);
        let template = LogisticRegression::new(LinearConfig {
            epochs: 3,
            ..LinearConfig::default()
        });
        let (oof, models) = out_of_fold(&template, &data, 4, &mut rng).unwrap();
        assert_eq!(oof.len(), 40);
        assert_eq!(models.len(), 4);
        assert!(oof.iter().all(|p| (0.0..=1.0).contains(p)));
    }

    #[test]
    fn bagged_model_predicts_and_names() {
        let mut rng = Rng::new(2);
        let rows: Vec<Vec<f32>> = (0..60).map(|i| vec![(i as f32) / 30.0 - 1.0]).collect();
        let y: Vec<f32> = (0..60).map(|i| if i >= 30 { 1.0 } else { 0.0 }).collect();
        let data = TabularData::new(Matrix::from_rows(&rows), y);
        let template = LogisticRegression::default();
        let bag = BaggedModel::fit(&template, &data, 3, &mut rng).unwrap();
        assert!(bag.name().starts_with("logreg"));
        let probs = bag.predict_proba(&data.x);
        // monotone feature → later rows should have higher probability
        assert!(probs[55] > probs[5]);
    }

    #[test]
    fn glm_metalearner_recovers_best_model() {
        // base model 0 is informative, model 1 is noise
        let n = 200;
        let y: Vec<f32> = (0..n).map(|i| if i % 4 == 0 { 1.0 } else { 0.0 }).collect();
        let good: Vec<f32> = y.iter().map(|&v| 0.8 * v + 0.1).collect();
        let noise: Vec<f32> = (0..n).map(|i| ((i * 13) % 100) as f32 / 100.0).collect();
        let oof = Matrix::from_fn(n, 2, |i, j| if j == 0 { good[i] } else { noise[i] });
        let meta = GlmMetalearner::fit(&oof, &y, 1e-3);
        assert!(
            meta.coefs[0].abs() > 5.0 * meta.coefs[1].abs(),
            "{:?}",
            meta.coefs
        );
        let preds = meta.predict(&[good, noise]);
        assert!(preds.iter().all(|p| (0.0..=1.0).contains(p)));
    }
}
