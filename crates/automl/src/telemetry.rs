//! Shared search-trajectory telemetry for the AutoML engines.
//!
//! Every engine funnels its per-candidate evaluations through a
//! [`TrialTracker`], which emits one [`obs::TrialEvent`] per fitted model
//! (family, hyperparameters, validation F1, units charged, best-so-far)
//! and keeps two registry metrics per engine current:
//! `automl.<engine>.trials` (counter) and `automl.<engine>.units_spent`
//! (gauge). Convergence traces — best validation F1 over budget spend —
//! thus fall out of any run, in the JSONL trace when `AUTOML_EM_TRACE` is
//! set and in [`obs::recent_trials`] always.

use crate::budget::ModelFamily;

/// Per-search trial telemetry (one per `fit` call).
pub struct TrialTracker {
    engine: &'static str,
    n: usize,
    best: f64,
    trials: &'static obs::Counter,
    units: &'static obs::Gauge,
}

impl TrialTracker {
    /// Start tracking one engine's search.
    pub fn new(engine: &'static str) -> Self {
        Self {
            engine,
            n: 0,
            best: f64::NEG_INFINITY,
            trials: obs::counter(&format!("automl.{engine}.trials")),
            units: obs::gauge(&format!("automl.{engine}.units_spent")),
        }
    }

    /// Record one candidate fit: its family, full model description
    /// (hyperparameters included), validation F1 and budget charge.
    pub fn record(&mut self, family: ModelFamily, model: &str, val_f1: f64, cost_units: f64) {
        self.best = self.best.max(val_f1);
        obs::events::emit_trial(obs::TrialEvent {
            engine: self.engine,
            trial: self.n,
            family: format!("{family:?}"),
            model: model.to_owned(),
            val_f1,
            cost_units,
            best_so_far: self.best,
        });
        self.n += 1;
        self.trials.inc();
        self.units.add(cost_units);
    }

    /// Trials recorded in this search so far.
    pub fn trials(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_emits_and_counts() {
        let mut t = TrialTracker::new("t.tel.Engine");
        t.record(ModelFamily::Gbm, "gbm(rounds=50)", 61.0, 1.5);
        t.record(ModelFamily::LogReg, "logreg(l2=0.01)", 55.0, 0.5);
        assert_eq!(t.trials(), 2);
        let trials = obs::recent_trials(Some("t.tel.Engine"));
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].best_so_far, 61.0);
        assert_eq!(trials[1].best_so_far, 61.0, "best-so-far is cumulative");
        assert_eq!(obs::counter("automl.t.tel.Engine.trials").get(), 2);
        let spent = obs::gauge("automl.t.tel.Engine.units_spent").get();
        assert!((spent - 2.0).abs() < 1e-12);
    }
}
