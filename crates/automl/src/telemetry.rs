//! Shared search-trajectory telemetry for the AutoML engines.
//!
//! Every engine funnels its per-candidate evaluations through a
//! [`TrialTracker`], which emits one [`obs::TrialEvent`] per fitted model
//! (family, hyperparameters, validation F1, units charged, best-so-far)
//! and keeps two registry metrics per engine current:
//! `automl.<engine>.trials` (counter) and `automl.<engine>.units_spent`
//! (gauge). Convergence traces — best validation F1 over budget spend —
//! thus fall out of any run, in the JSONL trace when `AUTOML_EM_TRACE` is
//! set and in [`obs::recent_trials`] always.

use crate::budget::ModelFamily;
use ml::TrialError;

/// Per-search trial telemetry (one per `fit` call).
pub struct TrialTracker {
    engine: &'static str,
    n: usize,
    best: f64,
    trials: &'static obs::Counter,
    failed: &'static obs::Counter,
    units: &'static obs::Gauge,
}

impl TrialTracker {
    /// Start tracking one engine's search.
    pub fn new(engine: &'static str) -> Self {
        Self {
            engine,
            n: 0,
            best: f64::NEG_INFINITY,
            trials: obs::counter(&format!("automl.{engine}.trials")),
            failed: obs::counter(&format!("automl.{engine}.failed_trials")),
            units: obs::gauge(&format!("automl.{engine}.units_spent")),
        }
    }

    /// Record one candidate fit: its family, full model description
    /// (hyperparameters included), validation F1, budget charge and
    /// wall-clock milliseconds spent inside the guarded evaluation
    /// (telemetry only — wall time never reaches a `FitReport`).
    pub fn record(
        &mut self,
        family: ModelFamily,
        model: &str,
        val_f1: f64,
        cost_units: f64,
        wall_ms: f64,
    ) {
        self.best = self.best.max(val_f1);
        obs::events::emit_trial(obs::TrialEvent {
            engine: self.engine,
            trial: self.n,
            family: format!("{family:?}"),
            model: model.to_owned(),
            val_f1,
            cost_units,
            wall_ms,
            best_so_far: self.best,
            error: None,
        });
        self.n += 1;
        self.trials.inc();
        self.units.add(cost_units);
    }

    /// Record one quarantined candidate failure. The trial still counts
    /// toward the trial index and charges `cost_units` (the work was
    /// attempted), but never advances best-so-far; its `val_f1` is stored
    /// as `-inf` so the event stays NaN-free and comparable.
    pub fn record_failure(
        &mut self,
        family: ModelFamily,
        model: &str,
        error: &TrialError,
        cost_units: f64,
        wall_ms: f64,
    ) {
        obs::events::emit_trial(obs::TrialEvent {
            engine: self.engine,
            trial: self.n,
            family: format!("{family:?}"),
            model: model.to_owned(),
            val_f1: f64::NEG_INFINITY,
            cost_units,
            wall_ms,
            best_so_far: self.best,
            error: Some(error.to_string()),
        });
        self.n += 1;
        self.trials.inc();
        self.failed.inc();
        self.units.add(cost_units);
    }

    /// Trials recorded in this search so far.
    pub fn trials(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_emits_and_counts() {
        let mut t = TrialTracker::new("t.tel.Engine");
        t.record(ModelFamily::Gbm, "gbm(rounds=50)", 61.0, 1.5, 12.0);
        t.record(ModelFamily::LogReg, "logreg(l2=0.01)", 55.0, 0.5, 3.0);
        assert_eq!(t.trials(), 2);
        let trials = obs::recent_trials(Some("t.tel.Engine"));
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].best_so_far, 61.0);
        assert_eq!(trials[1].best_so_far, 61.0, "best-so-far is cumulative");
        assert_eq!(trials[0].wall_ms, 12.0, "wall time rides along per trial");
        assert_eq!(obs::counter("automl.t.tel.Engine.trials").get(), 2);
        let spent = obs::gauge("automl.t.tel.Engine.units_spent").get();
        assert!((spent - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tracker_records_failures_without_moving_best() {
        let mut t = TrialTracker::new("t.tel.FailEngine");
        t.record(ModelFamily::Gbm, "gbm(rounds=50)", 70.0, 1.0, 5.0);
        t.record_failure(
            ModelFamily::Knn,
            "knn(k=5)",
            &TrialError::NonFiniteScore { stage: "score" },
            0.5,
            1.0,
        );
        assert_eq!(t.trials(), 2);
        let trials = obs::recent_trials(Some("t.tel.FailEngine"));
        assert_eq!(trials.len(), 2);
        let failed = &trials[1];
        assert_eq!(failed.val_f1, f64::NEG_INFINITY);
        assert_eq!(failed.best_so_far, 70.0, "failure must not advance best");
        assert!(failed.error.as_deref().unwrap().contains("non-finite"));
        assert_eq!(
            obs::counter("automl.t.tel.FailEngine.failed_trials").get(),
            1
        );
    }
}
