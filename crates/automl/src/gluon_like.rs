//! AutoGluon-style system: no hyperparameter search — a fixed roster of
//! model families, k-fold bagging, and multi-layer stacking on out-of-fold
//! predictions (Erickson et al., 2020, as summarized in the paper's §2).
//!
//! Characteristic behaviours this reproduces:
//!
//! * training time is dominated by the roster × bagging cost, so it *varies
//!   with dataset size* instead of filling a fixed clock (Table 2 shows
//!   4.4 h on S-DG, 4 minutes on S-BR);
//! * under a tight budget the tail of the roster and the stacker are
//!   skipped, degrading quality (the paper's 1-hour AutoGluon experiment
//!   lost ~6 F1 points on average);
//! * on very small datasets k-fold stacking is brittle (S-BR collapses in
//!   Table 2).

use crate::budget::{fit_cost, Budget, ModelFamily};
use crate::ensemble::{greedy_selection, weighted_average, BaggedModel, GlmMetalearner};
use crate::fault::FaultPlan;
use crate::journal::{ResumePolicy, SearchRun};
use crate::leaderboard::{FitReport, Leaderboard};
use crate::telemetry::TrialTracker;
use crate::trial::guard_trial_timed;
use crate::AutoMlSystem;
use linalg::{Matrix, Rng};
use ml::boosting::{BoostConfig, GradientBoosting, ObliviousBoosting};
use ml::dataset::TabularData;
use ml::forest::{ForestConfig, RandomForest};
use ml::knn::{KNearest, KnnConfig};
use ml::metrics::best_f1_threshold;
use ml::{Classifier, TrialError};
use par::Deadline;

/// Bagging folds (AutoGluon default is 8; 5 keeps small datasets viable).
const K_FOLDS: usize = 5;

fn roster(seed: u64) -> Vec<(ModelFamily, Box<dyn Classifier>)> {
    vec![
        (
            ModelFamily::Gbm,
            Box::new(GradientBoosting::new(BoostConfig {
                n_rounds: 110,
                lr: 0.08,
                max_depth: 6,
                seed,
                ..BoostConfig::default()
            })) as Box<dyn Classifier>,
        ),
        (
            ModelFamily::CatGbm,
            Box::new(ObliviousBoosting::new(BoostConfig {
                n_rounds: 90,
                lr: 0.1,
                max_depth: 5,
                seed: seed ^ 1,
                ..BoostConfig::default()
            })),
        ),
        (
            ModelFamily::RandomForest,
            Box::new(RandomForest::new(ForestConfig::random_forest(60, seed ^ 2))),
        ),
        (
            ModelFamily::ExtraTrees,
            Box::new(RandomForest::new(ForestConfig::extra_trees(60, seed ^ 3))),
        ),
        (
            ModelFamily::Knn,
            Box::new(KNearest::new(KnnConfig {
                k: 11,
                distance_weighted: true,
            })),
        ),
    ]
}

/// The AutoGluon-style engine. See module docs.
pub struct AutoGluonStyle {
    seed: u64,
    faults: FaultPlan,
    bags: Vec<BaggedModel>,
    meta: Option<GlmMetalearner>,
    /// Greedy fallback weights over bags when the stacker is skipped/worse.
    weights: Vec<f32>,
    threshold: f32,
    /// Constant fallback probability when nothing could be trained.
    fallback: Option<f32>,
}

impl AutoGluonStyle {
    /// New engine with a deterministic seed (faults come from the
    /// `AUTOML_EM_FAULTS` environment variable, usually none).
    pub fn new(seed: u64) -> Self {
        Self::with_faults(seed, FaultPlan::from_env())
    }

    /// New engine with an explicit fault-injection plan (tests).
    pub fn with_faults(seed: u64, faults: FaultPlan) -> Self {
        Self {
            seed,
            faults,
            bags: Vec::new(),
            meta: None,
            weights: Vec::new(),
            threshold: 0.5,
            fallback: None,
        }
    }
}

impl AutoMlSystem for AutoGluonStyle {
    fn name(&self) -> &'static str {
        "AutoGluon"
    }

    fn fit_resumable(
        &mut self,
        train: &TabularData,
        valid: &TabularData,
        budget: &mut Budget,
        policy: &ResumePolicy,
        deadline: Deadline,
    ) -> Result<FitReport, TrialError> {
        let span = obs::span("automl.AutoGluon.fit");
        let mut tracker = TrialTracker::new(self.name());
        let mut rng = Rng::new(self.seed ^ 0x61u64);
        let valid_labels = valid.labels_bool();
        let mut leaderboard = Leaderboard::new();
        self.bags = Vec::new();
        self.meta = None;
        self.fallback = None;

        let members = roster(self.seed);
        let roster_desc: Vec<String> = members
            .iter()
            .map(|(family, template)| format!("{family:?}:{}", template.name()))
            .collect();
        let positives = train.y.iter().filter(|&&v| v >= 0.5).count();
        let mut run = SearchRun::start(
            self.name(),
            self.seed,
            budget,
            &[
                &format!("k_folds={K_FOLDS}"),
                &format!("roster={}", roster_desc.join(",")),
                &format!(
                    "rows={} cols={} pos={positives} valid={}",
                    train.len(),
                    train.x.cols(),
                    valid.len()
                ),
            ],
            policy,
            deadline,
        )?;
        let mut deadline_cut = false;

        // --- layer 1: bagged base models -------------------------------
        for (family, template) in members {
            if run.deadline_expired() {
                run.note_deadline();
                deadline_cut = true;
                break; // keep what is already trained: best-so-far
            }
            // k fold-fits, each on (k-1)/k of the data
            let cost = K_FOLDS as f64 * fit_cost(family, train.len() * (K_FOLDS - 1) / K_FOLDS);
            if !budget.can_afford(cost) {
                continue; // tight budgets silently drop roster tails
            }
            // attempted roster members are trials: a failing bag — panic,
            // NaN score, injected fault — is quarantined and the roster
            // continues (budget-skipped members above are not trials and
            // get no leaderboard entry)
            let trial_idx = tracker.trials() as u64;
            let name = format!("bag[{}]", template.name());
            run.note_planned(trial_idx, &name, cost);
            run.sync();
            // Each trial gets its own forked rng stream, advanced on the
            // driving thread whether or not the trial body runs — so a
            // failure replayed from the journal (which skips the body)
            // leaves every later trial's randomness untouched.
            let mut bag_rng = rng.fork(trial_idx);
            let token = run.token();
            let (outcome, wall_ms) = match run.replayed_failure(trial_idx) {
                Some(err) => (Err(err), 0.0),
                None => guard_trial_timed(self.name(), self.faults.get(trial_idx), &token, || {
                    let bag = BaggedModel::fit(template.as_ref(), train, K_FOLDS, &mut bag_rng)?;
                    let val_probs = bag.predict_proba(&valid.x);
                    let (_, f1) = best_f1_threshold(&val_probs, &valid_labels);
                    Ok((bag, val_probs, f1))
                }),
            };
            let charged = run.charge(trial_idx, cost * self.faults.cost_multiplier(trial_idx));
            budget.consume(charged);
            match outcome {
                Ok((bag, _, f1)) => {
                    run.record_done(trial_idx, &name, f1, charged)?;
                    tracker.record(family, &name, f1, charged, wall_ms);
                    leaderboard.push(name, f1, charged);
                    self.bags.push(bag);
                }
                Err(err) => {
                    run.record_failed(trial_idx, &name, &err, charged)?;
                    tracker.record_failure(family, &name, &err, charged, wall_ms);
                    leaderboard.push_failed(name, err, charged);
                }
            }
        }

        if self.bags.is_empty() {
            if !leaderboard.is_empty() {
                // trials were attempted and every one failed — that is a
                // run-level error, not the budget-starvation fallback
                span.add_units(budget.used());
                return Err(TrialError::AllTrialsFailed {
                    attempted: leaderboard.len(),
                });
            }
            // nothing affordable: majority-class predictor (this is the
            // degenerate outcome the paper observed on starved runs)
            let prior = train.positive_ratio() as f32;
            self.fallback = Some(prior);
            self.threshold = 0.5;
            span.add_units(budget.used());
            return Ok(FitReport {
                system: self.name(),
                units_used: budget.used(),
                hours_used: budget.used_hours(),
                val_f1: 0.0,
                threshold: 0.5,
                leaderboard,
            });
        }

        // --- layer 2: GLM stacker on out-of-fold probabilities ----------
        let oof = Matrix::from_fn(train.len(), self.bags.len(), |i, m| self.bags[m].oof[i]);
        let stack_cost = fit_cost(ModelFamily::LogReg, train.len());
        let bag_val_probs: Vec<Vec<f32>> = self
            .bags
            .iter()
            .map(|b| b.predict_proba(&valid.x))
            .collect();
        let mut best: (f64, f32); // (val F1, threshold)

        // greedy weighted ensemble is always available
        let weights = greedy_selection(&bag_val_probs, &valid_labels, 15);
        let greedy_val = weighted_average(&bag_val_probs, &weights);
        let (gt, gf1) = best_f1_threshold(&greedy_val, &valid_labels);
        self.weights = weights;
        best = (gf1, gt);

        if !deadline_cut && budget.can_afford(stack_cost) {
            // the stacker is a trial like any other: a degenerate GLM solve
            // (NaN coefficients on collinear folds) is quarantined and the
            // greedy ensemble below keeps the run alive
            let trial_idx = tracker.trials() as u64;
            run.note_planned(trial_idx, "stacker[glm]", stack_cost);
            run.sync();
            let token = run.token();
            let (outcome, wall_ms) = match run.replayed_failure(trial_idx) {
                Some(err) => (Err(err), 0.0),
                None => guard_trial_timed(self.name(), self.faults.get(trial_idx), &token, || {
                    let meta = GlmMetalearner::fit(&oof, &train.y, 1e-2);
                    let stacked_val = meta.predict(&bag_val_probs);
                    let (st, sf1) = best_f1_threshold(&stacked_val, &valid_labels);
                    Ok(((meta, st), stacked_val, sf1))
                }),
            };
            let charged = run.charge(
                trial_idx,
                stack_cost * self.faults.cost_multiplier(trial_idx),
            );
            budget.consume(charged);
            match outcome {
                Ok(((meta, st), _, sf1)) => {
                    run.record_done(trial_idx, "stacker[glm]", sf1, charged)?;
                    tracker.record(ModelFamily::LogReg, "stacker[glm]", sf1, charged, wall_ms);
                    leaderboard.push("stacker[glm]".to_owned(), sf1, charged);
                    if sf1 > best.0 {
                        best = (sf1, st);
                        self.meta = Some(meta);
                    }
                }
                Err(err) => {
                    run.record_failed(trial_idx, "stacker[glm]", &err, charged)?;
                    tracker.record_failure(
                        ModelFamily::LogReg,
                        "stacker[glm]",
                        &err,
                        charged,
                        wall_ms,
                    );
                    leaderboard.push_failed("stacker[glm]".to_owned(), err, charged);
                }
            }
        }

        self.threshold = best.1;
        span.add_units(budget.used());
        Ok(FitReport {
            system: self.name(),
            units_used: budget.used(),
            hours_used: budget.used_hours(),
            val_f1: best.0,
            threshold: best.1,
            leaderboard,
        })
    }

    fn predict_proba(&self, x: &Matrix) -> Vec<f32> {
        if let Some(p) = self.fallback {
            return vec![p; x.rows()];
        }
        assert!(!self.bags.is_empty(), "predict before fit");
        let base: Vec<Vec<f32>> = self.bags.iter().map(|b| b.predict_proba(x)).collect();
        match &self.meta {
            Some(meta) => meta.predict(&base),
            None => weighted_average(&base, &self.weights),
        }
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ml::metrics::f1_score;

    fn blob_data(n: usize, seed: u64) -> TabularData {
        let mut rng = Rng::new(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let pos = rng.chance(0.3);
            let c = if pos { 1.2f32 } else { -1.2 };
            rows.push(vec![c + rng.normal(), -c + rng.normal()]);
            y.push(if pos { 1.0 } else { 0.0 });
        }
        TabularData::new(Matrix::from_rows(&rows), y)
    }

    #[test]
    fn end_to_end() {
        let train = blob_data(300, 1);
        let valid = blob_data(120, 2);
        let test = blob_data(120, 3);
        let mut sys = AutoGluonStyle::new(5);
        let mut budget = Budget::hours(4.0).unwrap();
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert!(
            report.leaderboard.len() >= 5,
            "{}",
            report.leaderboard.len()
        );
        let f1 = f1_score(&sys.predict(&test.x), &test.labels_bool());
        assert!(f1 > 85.0, "F1 {f1}");
    }

    #[test]
    fn time_used_scales_with_dataset_not_budget() {
        let valid = blob_data(60, 4);
        let mut small_sys = AutoGluonStyle::new(1);
        let mut b1 = Budget::hours(10.0).unwrap();
        small_sys.fit(&blob_data(100, 5), &valid, &mut b1).unwrap();
        let mut large_sys = AutoGluonStyle::new(1);
        let mut b2 = Budget::hours(10.0).unwrap();
        large_sys.fit(&blob_data(2000, 6), &valid, &mut b2).unwrap();
        assert!(
            b2.used() > 2.0 * b1.used(),
            "{} vs {}",
            b2.used(),
            b1.used()
        );
        assert!(!b1.exhausted(), "AutoGluon should not drain a huge budget");
    }

    #[test]
    fn starved_budget_degrades_to_fallback() {
        let train = blob_data(500, 7);
        let valid = blob_data(100, 8);
        let mut sys = AutoGluonStyle::new(1);
        let mut budget = Budget::units(0.2).unwrap(); // can't afford anything
        let report = sys.fit(&train, &valid, &mut budget).unwrap();
        assert_eq!(report.val_f1, 0.0);
        let probs = sys.predict_proba(&valid.x);
        assert!(probs.iter().all(|&p| p == probs[0]), "constant fallback");
    }

    #[test]
    fn tight_budget_trains_fewer_models() {
        let train = blob_data(400, 9);
        let valid = blob_data(100, 10);
        let mut rich_sys = AutoGluonStyle::new(2);
        let mut rich = Budget::hours(10.0).unwrap();
        let r1 = rich_sys.fit(&train, &valid, &mut rich).unwrap();
        let mut poor_sys = AutoGluonStyle::new(2);
        // enough for roughly half the roster
        let mut poor = Budget::units(rich.used() * 0.45).unwrap();
        let r2 = poor_sys.fit(&train, &valid, &mut poor).unwrap();
        assert!(r2.leaderboard.len() < r1.leaderboard.len());
    }

    #[test]
    fn deterministic() {
        let train = blob_data(200, 11);
        let valid = blob_data(80, 12);
        let run = || {
            let mut sys = AutoGluonStyle::new(3);
            let mut budget = Budget::hours(5.0).unwrap();
            sys.fit(&train, &valid, &mut budget).unwrap();
            sys.predict_proba(&valid.x)
        };
        assert_eq!(run(), run());
    }
}
