//! The guarded trial boundary every engine evaluates candidates through.
//!
//! [`guard_trial`] is the single place where a candidate fit can go wrong
//! without taking the search down with it. It applies any injected
//! [`Fault`], installs the run's cancellation token so model fit loops
//! can abandon work once the wall-clock deadline passes, catches panics
//! from model code via [`par::catch_panic`], and validates that the
//! trial's outputs are finite — so by the time an engine sees `Ok`, the
//! probabilities and score are safe to store in a [`crate::FitReport`]
//! (which must stay NaN-free to keep its `PartialEq` byte-identity
//! contract across thread counts).

use crate::budget::{fit_cost, Budget, ModelFamily};
use crate::fault::{Fault, INJECTED_KILL_MSG, INJECTED_PANIC_MSG};
use crate::leaderboard::Leaderboard;
use ml::TrialError;
use par::CancelToken;

/// Outcome of one guarded candidate evaluation: the fitted model,
/// its validation probabilities and its validation score.
pub(crate) type TrialOutcome<T> = Result<(T, Vec<f32>, f64), TrialError>;

/// Ceiling on how long a [`Fault::Hang`] may spin when no deadline is
/// set, so a misconfigured fault plan cannot wedge a test run forever.
const HANG_SAFETY_VALVE: std::time::Duration = std::time::Duration::from_secs(60);

/// Run one candidate evaluation inside the fault boundary.
///
/// `fault` is the injected fault scheduled for this trial (if any);
/// `token` is the run's cancellation token, installed around `f` so fit
/// loops deep in `ml` can poll [`par::cancel_requested`]; `f` builds,
/// fits, predicts and scores the candidate, returning
/// `(model, validation probabilities, score)`. On success the
/// probabilities and the score are checked for finiteness — a NaN or
/// infinity anywhere quarantines the trial as
/// [`TrialError::NonFiniteScore`] rather than letting it poison a sort or
/// a stored report. A trial whose deadline already passed (or that was
/// abandoned mid-fit) is quarantined as [`TrialError::DeadlineExceeded`].
pub(crate) fn guard_trial<T>(
    fault: Option<Fault>,
    token: &CancelToken,
    f: impl FnOnce() -> TrialOutcome<T>,
) -> TrialOutcome<T> {
    if matches!(fault, Some(Fault::Fail)) {
        return Err(TrialError::Injected("trial failure"));
    }
    if matches!(fault, Some(Fault::Kill)) {
        // Simulated process death: raised *outside* `catch_panic` so the
        // unwind escapes the trial boundary, aborts the whole engine
        // scope, and leaves only fsync'd journal records behind — the
        // in-process stand-in for SIGKILL that the kill-and-resume tests
        // are built on. Only reachable through an injected fault plan,
        // never on a clean run.
        #[allow(clippy::panic)]
        std::panic::panic_any(INJECTED_KILL_MSG.to_owned());
    }
    if token.is_cancelled() {
        // Deadline passed before this trial even started: abandon it
        // without doing any work so the engine's overrun stays bounded
        // by the one trial that was already in flight.
        return Err(TrialError::DeadlineExceeded);
    }
    let inner_token = token.clone();
    let caught = par::catch_panic(move || {
        par::with_cancel(&inner_token, || {
            if matches!(fault, Some(Fault::Panic)) {
                // Payload deliberately matches INJECTED_PANIC_MSG so the
                // test-only panic hook can keep it off stderr. This panic
                // is the fault being injected — it is caught by the same
                // `catch_panic` boundary that guards real fits.
                #[allow(clippy::panic)]
                std::panic::panic_any(INJECTED_PANIC_MSG.to_owned());
            }
            if matches!(fault, Some(Fault::Hang)) {
                // Simulated hung trial: spin until the deadline's token
                // cancels us (the path a wedged fit would take), with a
                // safety valve so a plan without a deadline terminates.
                let start = std::time::Instant::now();
                loop {
                    if par::cancel_requested() {
                        return Err(TrialError::DeadlineExceeded);
                    }
                    if start.elapsed() > HANG_SAFETY_VALVE {
                        eprintln!(
                            "warning: hang fault ran {}s with no deadline; abandoning trial",
                            HANG_SAFETY_VALVE.as_secs()
                        );
                        return Err(TrialError::DeadlineExceeded);
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
            let mut out = f();
            if matches!(fault, Some(Fault::NanScore)) {
                if let Ok((_, _, score)) = &mut out {
                    *score = f64::NAN;
                }
            }
            out
        })
    });
    let (model, probs, score) = match caught {
        Ok(result) => result?,
        Err(panic_msg) => return Err(TrialError::FitPanic(panic_msg)),
    };
    if probs.iter().any(|p| !p.is_finite()) {
        return Err(TrialError::NonFiniteScore {
            stage: "probability",
        });
    }
    if !score.is_finite() {
        return Err(TrialError::NonFiniteScore { stage: "score" });
    }
    Ok((model, probs, score))
}

/// Run one candidate evaluation inside the fault boundary ([`guard_trial`])
/// with cost attribution: the engine name is installed as the thread's
/// cost-ledger scope (so every instrumented phase the fit touches — GEMM,
/// fit epochs, cache misses — is charged to this engine), a `trial.<engine>`
/// span marks the evaluation in the span tree and the thread-aware trace,
/// and the trial's wall time is booked to the ledger's `trial` phase.
///
/// Returns the outcome plus the evaluation's wall-clock milliseconds, which
/// engines forward into [`crate::telemetry::TrialTracker`] events. Wall
/// time is telemetry only: it never flows into the returned outcome, so
/// `FitReport` byte-identity is preserved.
pub(crate) fn guard_trial_timed<T>(
    engine: &'static str,
    fault: Option<Fault>,
    token: &CancelToken,
    f: impl FnOnce() -> TrialOutcome<T>,
) -> (TrialOutcome<T>, f64) {
    // both guards release during unwind too (an injected Kill panics
    // straight through this boundary), so the scope stack and span tree
    // stay well-formed even when a trial dies
    let _scope = obs::ledger::scope(engine);
    let _span = obs::span(format!("trial.{engine}"));
    let start = std::time::Instant::now();
    let out = guard_trial(fault, token, f);
    let wall = start.elapsed();
    obs::ledger::add("trial", wall.as_nanos() as u64);
    (out, wall.as_secs_f64() * 1e3)
}

/// The run-level error when a search produced no usable model: every
/// attempted trial failed ([`TrialError::AllTrialsFailed`]), or the
/// budget never covered even the cheapest fit
/// ([`TrialError::BudgetExceeded`]).
pub(crate) fn all_failed_error(
    leaderboard: &Leaderboard,
    budget: &Budget,
    train_rows: usize,
) -> TrialError {
    if leaderboard.is_empty() {
        TrialError::budget_exceeded(
            fit_cost(ModelFamily::NaiveBayes, train_rows),
            budget.remaining(),
        )
    } else {
        TrialError::AllTrialsFailed {
            attempted: leaderboard.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_trial() -> TrialOutcome<&'static str> {
        Ok(("model", vec![0.1, 0.9], 72.5))
    }

    fn free() -> CancelToken {
        CancelToken::unbounded()
    }

    #[test]
    fn clean_trial_passes_through() {
        let (m, probs, score) = guard_trial(None, &free(), ok_trial).unwrap();
        assert_eq!(m, "model");
        assert_eq!(probs, vec![0.1, 0.9]);
        assert_eq!(score, 72.5);
    }

    #[test]
    fn fail_fault_short_circuits() {
        let err = guard_trial::<&'static str>(Some(Fault::Fail), &free(), || {
            unreachable!("Fail must not run the trial")
        })
        .unwrap_err();
        assert_eq!(err.kind(), "injected");
    }

    #[test]
    fn nan_fault_is_quarantined_as_non_finite_score() {
        let err = guard_trial(Some(Fault::NanScore), &free(), ok_trial).unwrap_err();
        assert_eq!(err, TrialError::NonFiniteScore { stage: "score" });
    }

    #[test]
    fn panic_fault_is_caught_at_the_boundary() {
        crate::fault::silence_injected_panic_output();
        let err = guard_trial(Some(Fault::Panic), &free(), ok_trial).unwrap_err();
        assert_eq!(err.kind(), "fit_panic");
        assert!(err.to_string().contains("injected fault: panic"));
    }

    #[test]
    fn real_panics_are_caught_too() {
        crate::fault::silence_injected_panic_output();
        let err: TrialError = guard_trial::<()>(None, &free(), || {
            std::panic::panic_any(format!("{INJECTED_PANIC_MSG} (simulated model bug)"));
        })
        .unwrap_err();
        assert_eq!(err.kind(), "fit_panic");
    }

    #[test]
    fn kill_fault_escapes_the_boundary() {
        crate::fault::silence_injected_panic_output();
        let unwound = std::panic::catch_unwind(|| {
            let _ = guard_trial(Some(Fault::Kill), &free(), ok_trial);
        });
        assert!(unwound.is_err(), "Kill must unwind through guard_trial");
    }

    #[test]
    fn cancelled_token_abandons_the_trial_before_it_starts() {
        let token = free();
        token.cancel();
        let err = guard_trial::<&'static str>(Some(Fault::Hang), &token, || {
            unreachable!("cancelled trial must not run")
        })
        .unwrap_err();
        assert_eq!(err, TrialError::DeadlineExceeded);
    }

    #[test]
    fn hang_fault_is_abandoned_when_the_deadline_fires() {
        let deadline = par::Deadline::within(std::time::Duration::from_millis(30));
        let err = guard_trial(Some(Fault::Hang), &deadline.token(), ok_trial).unwrap_err();
        assert_eq!(err, TrialError::DeadlineExceeded);
    }

    #[test]
    fn token_is_visible_to_the_trial_body() {
        let token = free();
        let inner = token.clone();
        let (seen, _, _) = guard_trial(None, &token, move || {
            inner.cancel();
            Ok((par::cancel_requested(), vec![0.5], 1.0))
        })
        .unwrap();
        assert!(seen, "ml fit loops must observe the installed token");
    }

    #[test]
    fn non_finite_probabilities_are_quarantined() {
        let err = guard_trial(None, &free(), || Ok(("m", vec![0.2, f32::NAN], 50.0))).unwrap_err();
        assert_eq!(
            err,
            TrialError::NonFiniteScore {
                stage: "probability"
            }
        );
        let err = guard_trial(None, &free(), || Ok(("m", vec![f32::INFINITY], 50.0))).unwrap_err();
        assert_eq!(err.kind(), "non_finite_score");
    }

    #[test]
    fn non_finite_score_is_quarantined() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = guard_trial(None, &free(), || Ok(("m", vec![0.5], bad))).unwrap_err();
            assert_eq!(err, TrialError::NonFiniteScore { stage: "score" });
        }
    }

    #[test]
    fn timed_guard_books_ledger_time_under_the_engine_scope() {
        let (out, wall_ms) = guard_trial_timed("t.guard.Ledger", None, &free(), ok_trial);
        assert!(out.is_ok());
        assert!(wall_ms >= 0.0);
        let booked = obs::ledger_snapshot()
            .into_iter()
            .find(|e| e.scope == "t.guard.Ledger" && e.phase == "trial")
            .expect("trial wall time booked to the engine scope");
        assert_eq!(booked.count, 1);
    }

    #[test]
    fn spans_survive_a_panicking_trial() {
        // the SpanGuard unwind audit: a panic inside a guarded trial must
        // close every span the trial opened, so the span tree and trace
        // export are never corrupted by a quarantined candidate
        crate::fault::silence_injected_panic_output();
        let (out, _) = guard_trial_timed::<()>("t.guard.SpanEngine", None, &free(), || {
            let _inner = obs::span("t.guard.inner");
            std::panic::panic_any(format!("{INJECTED_PANIC_MSG} (span unwind)"));
        });
        assert_eq!(out.unwrap_err().kind(), "fit_panic");
        let tree = obs::span_tree();
        let root = tree
            .iter()
            .find(|r| r.name == "trial.t.guard.SpanEngine")
            .expect("trial span recorded despite the panic");
        assert!(
            root.children.iter().any(|c| c.name == "t.guard.inner"),
            "inner span closed during unwind: {root:?}"
        );
        // and the thread's span stack is clean again: a fresh span lands
        // at the root, not under a stale trial frame
        {
            let _g = obs::span("t.guard.after");
        }
        assert!(obs::span_tree().iter().any(|r| r.name == "t.guard.after"));
    }

    #[test]
    fn inflate_cost_does_not_alter_the_outcome() {
        // cost inflation is applied by the engine's budget accounting, not
        // by the guard — the trial itself must be untouched
        let (_, _, score) = guard_trial(Some(Fault::InflateCost(3.0)), &free(), ok_trial).unwrap();
        assert_eq!(score, 72.5);
    }
}
