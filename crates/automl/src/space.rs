//! The model/hyperparameter search space shared by the AutoSklearn-style
//! SMBO loop and the H2O-style random search.
//!
//! A candidate is a model family plus a point in the unit hypercube; each
//! family maps the unit coordinates onto its real hyperparameters
//! (log-scaled where appropriate). The unit-cube encoding is also what the
//! SMBO surrogate regresses on.

use crate::budget::ModelFamily;
use linalg::Rng;
use ml::boosting::{BoostConfig, GradientBoosting, ObliviousBoosting};
use ml::forest::{ForestConfig, RandomForest};
use ml::knn::{KNearest, KnnConfig};
use ml::linear::{LinearConfig, LinearSvm, LogisticRegression};
use ml::naive_bayes::GaussianNb;
use ml::tree::{DecisionTree, SplitRule, TreeConfig};
use ml::Classifier;

/// Number of unit-cube dimensions every candidate is padded to.
pub const PARAM_DIMS: usize = 4;

/// A point in the search space.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Model family.
    pub family: ModelFamily,
    /// Hyperparameters as unit-cube coordinates, length [`PARAM_DIMS`].
    pub params: [f64; PARAM_DIMS],
}

/// Map `u ∈ [0,1]` onto `[lo, hi]` on a log scale.
fn log_scale(u: f64, lo: f64, hi: f64) -> f64 {
    (lo.ln() + u * (hi.ln() - lo.ln())).exp()
}

/// Map `u ∈ [0,1]` onto the integer range `[lo, hi]`.
fn int_scale(u: f64, lo: usize, hi: usize) -> usize {
    lo + ((u * (hi - lo + 1) as f64) as usize).min(hi - lo)
}

impl Candidate {
    /// Sample a uniformly random candidate.
    pub fn sample(families: &[ModelFamily], rng: &mut Rng) -> Candidate {
        let family = *rng.choose(families);
        let mut params = [0.0; PARAM_DIMS];
        for p in &mut params {
            *p = rng.f64();
        }
        Candidate { family, params }
    }

    /// Gaussian perturbation of this candidate (local search move for the
    /// SMBO acquisition optimizer), clipped to the cube.
    pub fn perturb(&self, sigma: f64, rng: &mut Rng) -> Candidate {
        let mut params = self.params;
        for p in &mut params {
            *p = (*p + sigma * rng.normal() as f64).clamp(0.0, 1.0);
        }
        Candidate {
            family: self.family,
            params,
        }
    }

    /// Instantiate the classifier this candidate encodes. `seed` decorrelates
    /// repeated builds of the same point.
    pub fn build(&self, seed: u64) -> Box<dyn Classifier> {
        let [a, b, c, d] = self.params;
        match self.family {
            ModelFamily::Gbm => Box::new(GradientBoosting::new(BoostConfig {
                n_rounds: int_scale(a, 30, 130),
                lr: log_scale(b, 0.03, 0.3) as f32,
                max_depth: int_scale(c, 3, 6),
                subsample: (0.6 + 0.4 * d) as f32,
                seed,
                ..BoostConfig::default()
            })),
            ModelFamily::CatGbm => Box::new(ObliviousBoosting::new(BoostConfig {
                n_rounds: int_scale(a, 30, 120),
                lr: log_scale(b, 0.02, 0.3) as f32,
                max_depth: int_scale(c, 3, 6),
                lambda: log_scale(d, 0.5, 10.0) as f32,
                seed,
                ..BoostConfig::default()
            })),
            ModelFamily::RandomForest => Box::new(RandomForest::new(ForestConfig {
                n_trees: int_scale(a, 25, 90),
                max_depth: int_scale(b, 6, 18),
                max_features: (0.1 + 0.9 * c) as f32,
                min_samples_leaf: int_scale(d, 1, 8),
                seed,
                ..ForestConfig::random_forest(0, seed)
            })),
            ModelFamily::ExtraTrees => Box::new(RandomForest::new(ForestConfig {
                n_trees: int_scale(a, 25, 90),
                max_depth: int_scale(b, 6, 18),
                max_features: (0.1 + 0.9 * c) as f32,
                min_samples_leaf: int_scale(d, 1, 8),
                seed,
                ..ForestConfig::extra_trees(0, seed)
            })),
            ModelFamily::Knn => Box::new(KNearest::new(KnnConfig {
                k: int_scale(a, 1, 32),
                distance_weighted: b >= 0.5,
            })),
            ModelFamily::LogReg => Box::new(LogisticRegression::new(LinearConfig {
                l2: log_scale(a, 1e-6, 1e-1) as f32,
                lr: log_scale(b, 0.01, 0.5) as f32,
                epochs: int_scale(c, 15, 60),
                balanced: d >= 0.3, // biased toward balanced, the EM-sane choice
                seed,
                ..LinearConfig::default()
            })),
            ModelFamily::LinearSvm => Box::new(LinearSvm::new(LinearConfig {
                l2: log_scale(a, 1e-5, 1e-1) as f32,
                epochs: int_scale(b, 10, 40),
                balanced: c >= 0.3,
                seed,
                ..LinearConfig::default()
            })),
            ModelFamily::NaiveBayes => Box::new(GaussianNb::new()),
            ModelFamily::Tree => Box::new(DecisionTree::new(TreeConfig {
                max_depth: int_scale(a, 3, 20),
                min_samples_leaf: int_scale(b, 1, 16),
                split_rule: if c >= 0.5 {
                    SplitRule::Best
                } else {
                    SplitRule::Random
                },
                seed,
                ..TreeConfig::default()
            })),
        }
    }

    /// Encode as a feature vector for the SMBO surrogate: a one-hot of the
    /// family followed by the unit-cube coordinates.
    pub fn encode(&self, families: &[ModelFamily]) -> Vec<f32> {
        let mut out = vec![0.0f32; families.len() + PARAM_DIMS];
        if let Some(idx) = families.iter().position(|&f| f == self.family) {
            out[idx] = 1.0;
        }
        for (i, &p) in self.params.iter().enumerate() {
            out[families.len() + i] = p as f32;
        }
        out
    }
}

/// The full family list searched by the AutoSklearn-style system.
pub fn sklearn_families() -> Vec<ModelFamily> {
    vec![
        ModelFamily::Gbm,
        ModelFamily::RandomForest,
        ModelFamily::ExtraTrees,
        ModelFamily::LogReg,
        ModelFamily::LinearSvm,
        ModelFamily::NaiveBayes,
        ModelFamily::Tree,
        ModelFamily::Knn,
    ]
}

/// The family list sampled by the H2O-style random search (its real
/// counterpart searches GBMs, GLMs, DRF and XGBoost variants).
pub fn h2o_families() -> Vec<ModelFamily> {
    vec![
        ModelFamily::Gbm,
        ModelFamily::RandomForest,
        ModelFamily::ExtraTrees,
        ModelFamily::LogReg,
        ModelFamily::Gbm, // weighted: H2O spends most of its search on GBMs
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::Matrix;

    fn tiny_data() -> (Matrix, Vec<f32>) {
        let mut rng = Rng::new(1);
        let rows: Vec<Vec<f32>> = (0..60)
            .map(|i| vec![i as f32 / 30.0 + 0.1 * rng.normal(), rng.normal()])
            .collect();
        let y: Vec<f32> = (0..60).map(|i| if i >= 30 { 1.0 } else { 0.0 }).collect();
        (Matrix::from_rows(&rows), y)
    }

    #[test]
    fn every_family_builds_and_fits() {
        let (x, y) = tiny_data();
        let mut rng = Rng::new(2);
        for family in sklearn_families() {
            let c = Candidate::sample(&[family], &mut rng);
            let mut model = c.build(7);
            model.fit(&x, &y).unwrap();
            let probs = model.predict_proba(&x);
            assert_eq!(probs.len(), 60);
            assert!(
                probs
                    .iter()
                    .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
                "{family:?}"
            );
        }
    }

    #[test]
    fn scales_map_endpoints() {
        assert!((log_scale(0.0, 1e-4, 1.0) - 1e-4).abs() < 1e-10);
        assert!((log_scale(1.0, 1e-4, 1.0) - 1.0).abs() < 1e-10);
        assert_eq!(int_scale(0.0, 3, 8), 3);
        assert_eq!(int_scale(0.9999, 3, 8), 8);
    }

    #[test]
    fn encode_shape_and_onehot() {
        let fams = sklearn_families();
        let mut rng = Rng::new(3);
        let c = Candidate::sample(&fams, &mut rng);
        let enc = c.encode(&fams);
        assert_eq!(enc.len(), fams.len() + PARAM_DIMS);
        let ones = enc[..fams.len()].iter().filter(|&&v| v == 1.0).count();
        assert_eq!(ones, 1);
    }

    #[test]
    fn perturb_stays_in_cube() {
        let mut rng = Rng::new(4);
        let c = Candidate::sample(&sklearn_families(), &mut rng);
        for _ in 0..50 {
            let p = c.perturb(0.5, &mut rng);
            assert_eq!(p.family, c.family);
            assert!(p.params.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let mut rng = Rng::new(5);
        let c = Candidate::sample(&[ModelFamily::Gbm], &mut rng);
        let (x, y) = tiny_data();
        let mut m1 = c.build(9);
        let mut m2 = c.build(9);
        m1.fit(&x, &y).unwrap();
        m2.fit(&x, &y).unwrap();
        assert_eq!(m1.predict_proba(&x), m2.predict_proba(&x));
    }
}
