//! Search-run reporting: leaderboards and fit reports.
//!
//! Failed candidates stay on the leaderboard — quarantined, not erased.
//! A failed entry records *why* it failed ([`ml::TrialError`]) and what it
//! cost, stores `val_f1 = -inf` (never NaN, which would break the
//! report's `PartialEq` byte-identity across thread counts), and is
//! excluded from [`Leaderboard::best`].

use ml::TrialError;

/// One evaluated model in a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardEntry {
    /// Human-readable model description.
    pub model: String,
    /// Validation F1 (percentage points) at the model's best threshold.
    /// `-inf` for failed trials — never NaN.
    pub val_f1: f64,
    /// Budget units this fit consumed.
    pub cost_units: f64,
    /// Why the trial failed, when it did (`None` for successes).
    pub error: Option<TrialError>,
}

impl LeaderboardEntry {
    /// True when this candidate completed and produced a usable score.
    pub fn succeeded(&self) -> bool {
        self.error.is_none()
    }
}

/// All models evaluated during a search, in evaluation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Leaderboard {
    entries: Vec<LeaderboardEntry>,
}

impl Leaderboard {
    /// Empty leaderboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one successful evaluation. A NaN score is quarantined
    /// defensively as a failed entry (engines validate upstream; this is
    /// the last line keeping reports NaN-free).
    pub fn push(&mut self, model: String, val_f1: f64, cost_units: f64) {
        if val_f1.is_nan() {
            return self.push_failed(
                model,
                TrialError::NonFiniteScore { stage: "score" },
                cost_units,
            );
        }
        self.entries.push(LeaderboardEntry {
            model,
            val_f1,
            cost_units,
            error: None,
        });
    }

    /// Record one quarantined failure: the candidate is kept (with the
    /// budget it burned and the reason it failed) but can never win.
    pub fn push_failed(&mut self, model: String, error: TrialError, cost_units: f64) {
        self.entries.push(LeaderboardEntry {
            model,
            val_f1: f64::NEG_INFINITY,
            cost_units,
            error: Some(error),
        });
    }

    /// Entries in evaluation order (successes and failures).
    pub fn entries(&self) -> &[LeaderboardEntry] {
        &self.entries
    }

    /// Number of evaluations, failed ones included.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was evaluated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Quarantined failures, in evaluation order.
    pub fn failures(&self) -> impl Iterator<Item = &LeaderboardEntry> {
        self.entries.iter().filter(|e| !e.succeeded())
    }

    /// Number of quarantined failures.
    pub fn n_failed(&self) -> usize {
        self.failures().count()
    }

    /// The best *successful* entry by validation F1. `None` when every
    /// trial failed (or none ran).
    pub fn best(&self) -> Option<&LeaderboardEntry> {
        self.entries
            .iter()
            .filter(|e| e.succeeded())
            .max_by(|a, b| linalg::stats::nan_worst_cmp(a.val_f1, b.val_f1))
    }
}

/// Summary of one AutoML `fit` run.
///
/// Derives `PartialEq` so the determinism suite can assert that two runs
/// at different thread counts produced byte-identical reports. That is
/// also why no field may ever hold NaN (`NaN != NaN`): failed trials store
/// `-inf` and carry their reason in
/// [`LeaderboardEntry::error`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Name of the system that produced this report (as in the paper's
    /// tables: "AutoSklearn", "AutoGluon", "H2OAutoML", …).
    pub system: &'static str,
    /// Budget units consumed.
    pub units_used: f64,
    /// Consumed budget expressed in paper-hours.
    pub hours_used: f64,
    /// Validation F1 of the final (possibly ensembled) predictor.
    pub val_f1: f64,
    /// Decision threshold tuned on validation data.
    pub threshold: f32,
    /// Every model evaluated along the way, failures included.
    pub leaderboard: Leaderboard,
}

impl FitReport {
    /// The quarantined failures of this run, in evaluation order.
    pub fn failed_trials(&self) -> Vec<&LeaderboardEntry> {
        self.leaderboard.failures().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_picks_max_f1() {
        let mut lb = Leaderboard::new();
        assert!(lb.best().is_none());
        lb.push("a".into(), 50.0, 1.0);
        lb.push("b".into(), 80.0, 2.0);
        lb.push("c".into(), 70.0, 1.5);
        assert_eq!(lb.best().unwrap().model, "b");
        assert_eq!(lb.len(), 3);
        assert_eq!(lb.n_failed(), 0);
    }

    #[test]
    fn failures_are_kept_but_never_win() {
        let mut lb = Leaderboard::new();
        lb.push_failed(
            "poisoned".into(),
            TrialError::NonFiniteScore { stage: "score" },
            1.0,
        );
        assert!(lb.best().is_none(), "all-failed leaderboard has no best");
        lb.push("ok".into(), 42.0, 1.0);
        lb.push_failed("crashed".into(), TrialError::FitPanic("boom".into()), 0.5);
        assert_eq!(lb.len(), 3);
        assert_eq!(lb.n_failed(), 2);
        assert_eq!(lb.best().unwrap().model, "ok");
        let reasons: Vec<&str> = lb
            .failures()
            .map(|e| e.error.as_ref().unwrap().kind())
            .collect();
        assert_eq!(reasons, ["non_finite_score", "fit_panic"]);
        // failed entries must be NaN-free so reports stay comparable
        assert!(lb.entries().iter().all(|e| !e.val_f1.is_nan()));
    }

    #[test]
    fn nan_push_is_quarantined_defensively() {
        let mut lb = Leaderboard::new();
        lb.push("bad".into(), f64::NAN, 1.0);
        assert!(lb.best().is_none());
        assert_eq!(lb.n_failed(), 1);
        assert!(!lb.entries()[0].val_f1.is_nan());
    }

    #[test]
    fn fit_report_lists_failed_trials() {
        let mut lb = Leaderboard::new();
        lb.push("ok".into(), 60.0, 1.0);
        lb.push_failed("bad".into(), TrialError::Injected("trial failure"), 0.2);
        let report = FitReport {
            system: "Test",
            units_used: 1.2,
            hours_used: 0.1,
            val_f1: 60.0,
            threshold: 0.5,
            leaderboard: lb,
        };
        let failed = report.failed_trials();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].model, "bad");
    }
}
