//! Search-run reporting: leaderboards and fit reports.

/// One evaluated model in a search run.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaderboardEntry {
    /// Human-readable model description.
    pub model: String,
    /// Validation F1 (percentage points) at the model's best threshold.
    pub val_f1: f64,
    /// Budget units this fit consumed.
    pub cost_units: f64,
}

/// All models evaluated during a search, in evaluation order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Leaderboard {
    entries: Vec<LeaderboardEntry>,
}

impl Leaderboard {
    /// Empty leaderboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one evaluation.
    pub fn push(&mut self, model: String, val_f1: f64, cost_units: f64) {
        self.entries.push(LeaderboardEntry {
            model,
            val_f1,
            cost_units,
        });
    }

    /// Entries in evaluation order.
    pub fn entries(&self) -> &[LeaderboardEntry] {
        &self.entries
    }

    /// Number of evaluations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was evaluated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The best entry by validation F1.
    pub fn best(&self) -> Option<&LeaderboardEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.val_f1.partial_cmp(&b.val_f1).expect("finite F1"))
    }
}

/// Summary of one AutoML `fit` run.
///
/// Derives `PartialEq` so the determinism suite can assert that two runs
/// at different thread counts produced byte-identical reports.
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Name of the system that produced this report (as in the paper's
    /// tables: "AutoSklearn", "AutoGluon", "H2OAutoML", …).
    pub system: &'static str,
    /// Budget units consumed.
    pub units_used: f64,
    /// Consumed budget expressed in paper-hours.
    pub hours_used: f64,
    /// Validation F1 of the final (possibly ensembled) predictor.
    pub val_f1: f64,
    /// Decision threshold tuned on validation data.
    pub threshold: f32,
    /// Every model evaluated along the way.
    pub leaderboard: Leaderboard,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_picks_max_f1() {
        let mut lb = Leaderboard::new();
        assert!(lb.best().is_none());
        lb.push("a".into(), 50.0, 1.0);
        lb.push("b".into(), 80.0, 2.0);
        lb.push("c".into(), 70.0, 1.5);
        assert_eq!(lb.best().unwrap().model, "b");
        assert_eq!(lb.len(), 3);
    }
}
