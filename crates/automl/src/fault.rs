//! Deterministic fault injection for the trial path.
//!
//! Robustness claims need tests, and "a trial panicked halfway through a
//! parallel batch" is not a situation unit tests stumble into naturally.
//! A [`FaultPlan`] injects failures at exact trial indices — fail trial
//! k, poison trial k's score with NaN, panic inside trial k, inflate
//! trial k's cost — so the suite can prove that every engine degrades
//! gracefully *and deterministically*: the same plan at 1 and 8 threads
//! must yield byte-identical [`crate::FitReport`]s.
//!
//! Plans are keyed by the engine's **planned trial index**, which is
//! assigned before any parallel execution, so a plan is thread-count
//! invariant by construction. Set `AUTOML_EM_FAULTS` (e.g.
//! `nan@2,panic@5,fail@0,cost@3=2.5`) to inject faults into a real run —
//! see EXPERIMENTS.md for the reproduction recipe.

use std::collections::BTreeMap;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The trial returns [`ml::TrialError::Injected`] without running.
    Fail,
    /// The trial runs but its validation score is replaced with NaN
    /// (exercising the non-finite quarantine path).
    NanScore,
    /// The trial panics mid-fit (exercising the `catch_unwind` boundary).
    Panic,
    /// The trial succeeds but its charged cost is multiplied by this
    /// factor (exercising budget accounting under mispriced trials).
    InflateCost(f64),
}

/// A deterministic schedule of faults, keyed by planned trial index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// A plan that injects nothing (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: inject `fault` at planned trial `trial`.
    pub fn inject(mut self, trial: u64, fault: Fault) -> Self {
        self.faults.insert(trial, fault);
        self
    }

    /// The fault scheduled for `trial`, if any.
    pub fn get(&self, trial: u64) -> Option<Fault> {
        self.faults.get(&trial).copied()
    }

    /// Cost multiplier for `trial`: the injected inflation factor, or 1.
    pub fn cost_multiplier(&self, trial: u64) -> f64 {
        match self.faults.get(&trial) {
            Some(Fault::InflateCost(m)) => *m,
            _ => 1.0,
        }
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parse the `AUTOML_EM_FAULTS` environment variable into a plan.
    /// Unset, empty, or unparseable entries mean "no fault" — fault
    /// injection must never break a production run.
    pub fn from_env() -> Self {
        match std::env::var("AUTOML_EM_FAULTS") {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Self::none(),
        }
    }

    /// Parse a comma-separated spec: `fail@K`, `nan@K`, `panic@K`,
    /// `cost@K=M`. Entries that don't parse are skipped (lenient by
    /// design — see [`FaultPlan::from_env`]).
    pub fn parse(spec: &str) -> Self {
        let mut plan = Self::none();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let Some((kind, rest)) = entry.split_once('@') else {
                continue;
            };
            let (trial_str, arg) = match rest.split_once('=') {
                Some((t, a)) => (t, Some(a)),
                None => (rest, None),
            };
            let Ok(trial) = trial_str.trim().parse::<u64>() else {
                continue;
            };
            let fault = match kind.trim() {
                "fail" => Fault::Fail,
                "nan" => Fault::NanScore,
                "panic" => Fault::Panic,
                "cost" => match arg.and_then(|a| a.trim().parse::<f64>().ok()) {
                    Some(m) if m.is_finite() && m > 0.0 => Fault::InflateCost(m),
                    _ => continue,
                },
                _ => continue,
            };
            plan.faults.insert(trial, fault);
        }
        plan
    }
}

/// Marker prefix on injected panic messages, used by
/// [`silence_injected_panic_output`] to keep test logs readable.
pub(crate) const INJECTED_PANIC_MSG: &str = "injected fault: panic";

/// Install a panic hook that suppresses the default stderr backtrace spam
/// for *injected* panics only; real panics still print through the
/// previous hook. Idempotent; used by the fault-injection tests.
pub fn silence_injected_panic_output() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.contains(INJECTED_PANIC_MSG))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| s.contains(INJECTED_PANIC_MSG))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .inject(2, Fault::NanScore)
            .inject(5, Fault::Panic)
            .inject(3, Fault::InflateCost(2.5));
        assert_eq!(plan.get(2), Some(Fault::NanScore));
        assert_eq!(plan.get(5), Some(Fault::Panic));
        assert_eq!(plan.get(0), None);
        assert_eq!(plan.cost_multiplier(3), 2.5);
        assert_eq!(plan.cost_multiplier(2), 1.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn parse_spec_roundtrip() {
        let plan = FaultPlan::parse("nan@2, panic@5,fail@0,cost@3=2.5");
        assert_eq!(
            plan,
            FaultPlan::none()
                .inject(2, Fault::NanScore)
                .inject(5, Fault::Panic)
                .inject(0, Fault::Fail)
                .inject(3, Fault::InflateCost(2.5))
        );
    }

    #[test]
    fn parse_is_lenient() {
        // garbage entries are dropped, valid ones kept
        let plan = FaultPlan::parse("bogus, nan@x, cost@1, cost@2=-1, cost@2=nan, panic@7,,");
        assert_eq!(plan, FaultPlan::none().inject(7, Fault::Panic));
        assert!(FaultPlan::parse("").is_empty());
    }
}
