//! Deterministic fault injection for the trial path.
//!
//! Robustness claims need tests, and "a trial panicked halfway through a
//! parallel batch" is not a situation unit tests stumble into naturally.
//! A [`FaultPlan`] injects failures at exact trial indices — fail trial
//! k, poison trial k's score with NaN, panic inside trial k, inflate
//! trial k's cost, hang trial k until its deadline, or kill the whole
//! process-equivalent search at trial k — so the suite can prove that
//! every engine degrades gracefully *and deterministically*: the same
//! plan at 1 and 8 threads must yield byte-identical
//! [`crate::FitReport`]s, and a killed-then-resumed search must match an
//! uninterrupted one.
//!
//! Plans are keyed by the engine's **planned trial index**, which is
//! assigned before any parallel execution, so a plan is thread-count
//! invariant by construction. Set `AUTOML_EM_FAULTS` (e.g.
//! `nan@2,panic@5,fail@0,cost@3=2.5,hang@7,kill@9`) to inject faults
//! into a real run — see EXPERIMENTS.md for the reproduction recipe.
//! Malformed specs are rejected loudly: a typo'd `panic@x` aborts the
//! process with a clear message instead of silently degrading to a no-op
//! (which would make a fault-injection experiment pass vacuously).
//!
//! The same variable also carries **serve-path faults** ([`ServeFaultPlan`],
//! consumed by `em-serve` and `serve_bench`), keyed by *site name* instead
//! of trial index: `panic@batcher[:K]` (the batch worker panics while
//! processing microbatch K), `err@predict[:K]` (the predict pass for
//! microbatch K fails with an injected typed error, the worker survives),
//! `slow@embed:MS` (every encode/predict pass gains MS milliseconds of
//! latency), and the client-side `torn@client` / `loris@client:MS`
//! (torn-write and slow-loris request patterns, honored by the
//! `serve_bench` load generator — the server never sees these, hostile
//! clients exercise it). Trial faults and serve faults mix freely in one
//! spec.

use std::collections::BTreeMap;
use std::fmt;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The trial returns [`ml::TrialError::Injected`] without running.
    Fail,
    /// The trial runs but its validation score is replaced with NaN
    /// (exercising the non-finite quarantine path).
    NanScore,
    /// The trial panics mid-fit (exercising the `catch_unwind` boundary).
    Panic,
    /// The trial succeeds but its charged cost is multiplied by this
    /// factor (exercising budget accounting under mispriced trials).
    InflateCost(f64),
    /// The trial spins until its cancellation token fires (exercising the
    /// deadline-abandonment path); it then fails as
    /// [`ml::TrialError::DeadlineExceeded`]. A 60 s safety valve prevents
    /// a plan without a deadline from hanging a test run forever.
    Hang,
    /// The search aborts by panic *outside* the trial's `catch_unwind`
    /// boundary, simulating a SIGKILL mid-search: in-flight work is lost
    /// and only journal records fsync'd before this trial survive
    /// (exercising the kill-and-resume path).
    Kill,
}

/// Deterministic serve-path faults parsed from the same
/// `AUTOML_EM_FAULTS` spec, keyed by site name rather than trial index.
/// `em-serve` injects the server-side faults into its batch workers;
/// `serve_bench --chaos` plays the client-side ones against the server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeFaultPlan {
    panic_batches: std::collections::BTreeSet<u64>,
    err_batches: std::collections::BTreeSet<u64>,
    slow_embed_ms: Option<u64>,
    torn_client: bool,
    loris_client_ms: Option<u64>,
}

impl ServeFaultPlan {
    /// A plan that injects nothing (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: the batch worker panics while processing microbatch `k`.
    pub fn panic_batcher_at(mut self, k: u64) -> Self {
        self.panic_batches.insert(k);
        self
    }

    /// Builder: the predict pass for microbatch `k` fails with an
    /// injected error (typed 500, worker survives).
    pub fn err_predict_at(mut self, k: u64) -> Self {
        self.err_batches.insert(k);
        self
    }

    /// Builder: every encode/predict pass sleeps `ms` milliseconds.
    pub fn slow_embed(mut self, ms: u64) -> Self {
        self.slow_embed_ms = Some(ms);
        self
    }

    /// Whether the worker should panic on microbatch `k`.
    pub fn panics_at(&self, k: u64) -> bool {
        self.panic_batches.contains(&k)
    }

    /// Whether the predict pass for microbatch `k` should fail.
    pub fn errs_at(&self, k: u64) -> bool {
        self.err_batches.contains(&k)
    }

    /// Injected per-pass embed latency in milliseconds, if any.
    pub fn slow_embed_ms(&self) -> Option<u64> {
        self.slow_embed_ms
    }

    /// Whether chaos clients should send torn (fragmented, paused)
    /// request writes.
    pub fn torn_client(&self) -> bool {
        self.torn_client
    }

    /// Slow-loris pacing in milliseconds per client write chunk, if any.
    pub fn loris_client_ms(&self) -> Option<u64> {
        self.loris_client_ms
    }

    /// True when no serve faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }
}

/// A malformed `AUTOML_EM_FAULTS` entry: which entry and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending comma-separated entry, verbatim.
    pub entry: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec entry '{}': {} (expected fail@K, nan@K, panic@K, hang@K, kill@K, cost@K=M, \
             panic@batcher[:K], err@predict[:K], slow@embed:MS, torn@client or loris@client:MS)",
            self.entry, self.reason
        )
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic schedule of faults, keyed by planned trial index,
/// plus the serve-path faults parsed from the same spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
    serve: ServeFaultPlan,
}

impl FaultPlan {
    /// A plan that injects nothing (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: inject `fault` at planned trial `trial`.
    pub fn inject(mut self, trial: u64, fault: Fault) -> Self {
        self.faults.insert(trial, fault);
        self
    }

    /// The fault scheduled for `trial`, if any.
    pub fn get(&self, trial: u64) -> Option<Fault> {
        self.faults.get(&trial).copied()
    }

    /// Cost multiplier for `trial`: the injected inflation factor, or 1.
    pub fn cost_multiplier(&self, trial: u64) -> f64 {
        match self.faults.get(&trial) {
            Some(Fault::InflateCost(m)) => *m,
            _ => 1.0,
        }
    }

    /// True when no faults are scheduled (trial or serve path).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.serve.is_empty()
    }

    /// The serve-path half of the plan.
    pub fn serve(&self) -> &ServeFaultPlan {
        &self.serve
    }

    /// Read the `AUTOML_EM_FAULTS` environment variable into a plan.
    /// Unset or empty means "no faults". A *malformed* spec aborts the
    /// process with a clear message: someone running a fault-injection
    /// experiment must never have a typo silently turn it into a clean
    /// run. (Config validation fail-fast, not a library panic — hence
    /// `process::exit`, which also keeps the panic-free clippy gate
    /// meaningful.)
    pub fn from_env() -> Self {
        match std::env::var("AUTOML_EM_FAULTS") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("fatal: AUTOML_EM_FAULTS={spec:?}: {e}");
                    std::process::exit(2);
                }
            },
            Err(_) => Self::none(),
        }
    }

    /// Parse a comma-separated spec. Trial-path productions: `fail@K`,
    /// `nan@K`, `panic@K`, `hang@K`, `kill@K`, `cost@K=M`. Serve-path
    /// productions (site names instead of trial indices):
    /// `panic@batcher[:K]`, `err@predict[:K]`, `slow@embed:MS`,
    /// `torn@client`, `loris@client:MS`. Empty entries (doubled or
    /// trailing commas) are tolerated; anything else malformed is an
    /// error naming the entry and the reason.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = Self::none();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let bad = |reason: &str| FaultSpecError {
                entry: entry.to_owned(),
                reason: reason.to_owned(),
            };
            let Some((kind, rest)) = entry.split_once('@') else {
                return Err(bad("missing '@<trial>'"));
            };
            // serve-path faults target a named site, not a trial index;
            // unknown tokens fall through to the trial parser so its
            // error messages stay stable
            let site = rest.trim().split(':').next().unwrap_or("").trim();
            if matches!(site, "batcher" | "embed" | "predict" | "client") {
                Self::parse_serve_entry(entry, kind.trim(), rest.trim(), &mut plan.serve)?;
                continue;
            }
            let (trial_str, arg) = match rest.split_once('=') {
                Some((t, a)) => (t, Some(a)),
                None => (rest, None),
            };
            let trial = trial_str
                .trim()
                .parse::<u64>()
                .map_err(|_| bad("trial index is not a non-negative integer"))?;
            let kind = kind.trim();
            if arg.is_some() && kind != "cost" {
                return Err(bad("only cost@K takes an '=<multiplier>' argument"));
            }
            let fault = match kind {
                "fail" => Fault::Fail,
                "nan" => Fault::NanScore,
                "panic" => Fault::Panic,
                "hang" => Fault::Hang,
                "kill" => Fault::Kill,
                "cost" => {
                    let arg = arg.ok_or_else(|| bad("cost@K needs '=<multiplier>'"))?;
                    let m = arg
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad("cost multiplier is not a number"))?;
                    if !m.is_finite() || m <= 0.0 {
                        return Err(bad("cost multiplier must be finite and positive"));
                    }
                    Fault::InflateCost(m)
                }
                other => {
                    return Err(FaultSpecError {
                        entry: entry.to_owned(),
                        reason: format!("unknown fault kind '{other}'"),
                    })
                }
            };
            plan.faults.insert(trial, fault);
        }
        Ok(plan)
    }

    /// Parse one serve-path entry (`kind@site[:arg]`) into `serve`.
    /// Every production is strict: wrong kind/site pairings, missing or
    /// malformed arguments, and stray arguments are all errors naming
    /// the offending entry.
    fn parse_serve_entry(
        entry: &str,
        kind: &str,
        rest: &str,
        serve: &mut ServeFaultPlan,
    ) -> Result<(), FaultSpecError> {
        let bad = |reason: String| FaultSpecError {
            entry: entry.to_owned(),
            reason,
        };
        let (site, arg) = match rest.split_once(':') {
            Some((s, a)) => (s.trim(), Some(a.trim())),
            None => (rest, None),
        };
        let batch_index = |arg: Option<&str>| -> Result<u64, FaultSpecError> {
            match arg {
                None => Ok(0),
                Some(a) => a
                    .parse::<u64>()
                    .map_err(|_| bad("batch index is not a non-negative integer".into())),
            }
        };
        match (kind, site) {
            ("panic", "batcher") => {
                serve.panic_batches.insert(batch_index(arg)?);
            }
            ("err", "predict") => {
                serve.err_batches.insert(batch_index(arg)?);
            }
            ("slow", "embed") => {
                let a = arg.ok_or_else(|| bad("slow@embed needs ':<millis>'".into()))?;
                let ms = a
                    .parse::<u64>()
                    .map_err(|_| bad("millis is not a non-negative integer".into()))?;
                serve.slow_embed_ms = Some(ms);
            }
            ("torn", "client") => {
                if arg.is_some() {
                    return Err(bad("torn@client takes no argument".into()));
                }
                serve.torn_client = true;
            }
            ("loris", "client") => {
                let a =
                    arg.ok_or_else(|| bad("loris@client needs ':<millis per chunk>'".into()))?;
                let ms = a
                    .parse::<u64>()
                    .map_err(|_| bad("millis is not a non-negative integer".into()))?;
                serve.loris_client_ms = Some(ms);
            }
            (kind, site) => {
                return Err(bad(format!(
                    "fault kind '{kind}' does not apply to site '{site}'"
                )));
            }
        }
        Ok(())
    }
}

/// Marker prefix on injected panic messages, used by
/// [`silence_injected_panic_output`] to keep test logs readable.
pub(crate) const INJECTED_PANIC_MSG: &str = "injected fault: panic";

/// Panic payload used by [`Fault::Kill`]. Raised *outside* the trial's
/// `catch_unwind` boundary so it unwinds through the whole engine —
/// the in-test stand-in for a SIGKILL mid-search.
pub(crate) const INJECTED_KILL_MSG: &str = "injected fault: kill (simulated process death)";

/// Install a panic hook that suppresses the default stderr backtrace spam
/// for *injected* panics only; real panics still print through the
/// previous hook. Idempotent; used by the fault-injection tests.
pub fn silence_injected_panic_output() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let matches_marker =
                |s: &str| s.contains(INJECTED_PANIC_MSG) || s.contains(INJECTED_KILL_MSG);
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| matches_marker(s))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| matches_marker(s))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .inject(2, Fault::NanScore)
            .inject(5, Fault::Panic)
            .inject(3, Fault::InflateCost(2.5));
        assert_eq!(plan.get(2), Some(Fault::NanScore));
        assert_eq!(plan.get(5), Some(Fault::Panic));
        assert_eq!(plan.get(0), None);
        assert_eq!(plan.cost_multiplier(3), 2.5);
        assert_eq!(plan.cost_multiplier(2), 1.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn parse_spec_roundtrip() {
        let plan = FaultPlan::parse("nan@2, panic@5,fail@0,cost@3=2.5, hang@7, kill@9,").unwrap();
        assert_eq!(
            plan,
            FaultPlan::none()
                .inject(2, Fault::NanScore)
                .inject(5, Fault::Panic)
                .inject(0, Fault::Fail)
                .inject(3, Fault::InflateCost(2.5))
                .inject(7, Fault::Hang)
                .inject(9, Fault::Kill)
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs_with_reasons() {
        for (spec, needle) in [
            ("bogus", "missing '@<trial>'"),
            ("nan@x", "not a non-negative integer"),
            ("panic@-3", "not a non-negative integer"),
            ("cost@1", "needs '=<multiplier>'"),
            ("cost@2=-1", "finite and positive"),
            ("cost@2=nan", "finite and positive"),
            ("cost@2=zzz", "not a number"),
            ("explode@4", "unknown fault kind 'explode'"),
            ("nan@4=2", "only cost@K takes"),
            ("nan@2, panic@x", "not a non-negative integer"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(
                err.to_string().contains(needle),
                "{spec}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn valid_prefix_does_not_mask_a_later_error() {
        let err = FaultPlan::parse("fail@0,wat").unwrap_err();
        assert_eq!(err.entry, "wat");
    }

    #[test]
    fn serve_faults_parse_alongside_trial_faults() {
        let plan = FaultPlan::parse(
            "nan@2, panic@batcher, panic@batcher:3, err@predict:1, slow@embed:25, \
             torn@client, loris@client:10, kill@9",
        )
        .unwrap();
        assert_eq!(plan.get(2), Some(Fault::NanScore));
        assert_eq!(plan.get(9), Some(Fault::Kill));
        let s = plan.serve();
        assert!(s.panics_at(0), "bare panic@batcher means batch 0");
        assert!(s.panics_at(3));
        assert!(!s.panics_at(1));
        assert!(s.errs_at(1));
        assert!(!s.errs_at(0));
        assert_eq!(s.slow_embed_ms(), Some(25));
        assert!(s.torn_client());
        assert_eq!(s.loris_client_ms(), Some(10));
        assert!(!plan.is_empty());
        // a pure serve plan leaves the trial side empty but not the plan
        let only_serve = FaultPlan::parse("err@predict").unwrap();
        assert!(!only_serve.is_empty());
        assert!(only_serve.get(0).is_none());
        assert!(only_serve.serve().errs_at(0));
    }

    #[test]
    fn serve_fault_builders_match_parsed_plans() {
        let built = ServeFaultPlan::none()
            .panic_batcher_at(0)
            .panic_batcher_at(3)
            .err_predict_at(1)
            .slow_embed(25);
        let parsed =
            FaultPlan::parse("panic@batcher:0,panic@batcher:3,err@predict:1,slow@embed:25")
                .unwrap();
        assert_eq!(parsed.serve(), &built);
        assert!(ServeFaultPlan::none().is_empty());
        assert!(!built.is_empty());
    }

    #[test]
    fn malformed_serve_entries_are_rejected_with_reasons() {
        for (spec, needle) in [
            (
                "panic@batcher:x",
                "batch index is not a non-negative integer",
            ),
            (
                "panic@batcher:-1",
                "batch index is not a non-negative integer",
            ),
            (
                "err@predict:nope",
                "batch index is not a non-negative integer",
            ),
            ("slow@embed", "slow@embed needs ':<millis>'"),
            ("slow@embed:fast", "millis is not a non-negative integer"),
            ("torn@client:5", "torn@client takes no argument"),
            ("loris@client", "loris@client needs ':<millis per chunk>'"),
            ("loris@client:slow", "millis is not a non-negative integer"),
            (
                "slow@batcher:5",
                "fault kind 'slow' does not apply to site 'batcher'",
            ),
            (
                "panic@embed",
                "fault kind 'panic' does not apply to site 'embed'",
            ),
            (
                "nan@client",
                "fault kind 'nan' does not apply to site 'client'",
            ),
            (
                "hang@predict",
                "fault kind 'hang' does not apply to site 'predict'",
            ),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert_eq!(err.entry, spec, "error must name the bad token");
            assert!(
                err.to_string().contains(needle),
                "{spec}: expected {needle:?} in {err}"
            );
        }
        // a valid serve prefix does not mask a later trial error
        let err = FaultPlan::parse("panic@batcher, nan@x").unwrap_err();
        assert_eq!(err.entry, "nan@x");
    }
}
