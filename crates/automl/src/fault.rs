//! Deterministic fault injection for the trial path.
//!
//! Robustness claims need tests, and "a trial panicked halfway through a
//! parallel batch" is not a situation unit tests stumble into naturally.
//! A [`FaultPlan`] injects failures at exact trial indices — fail trial
//! k, poison trial k's score with NaN, panic inside trial k, inflate
//! trial k's cost, hang trial k until its deadline, or kill the whole
//! process-equivalent search at trial k — so the suite can prove that
//! every engine degrades gracefully *and deterministically*: the same
//! plan at 1 and 8 threads must yield byte-identical
//! [`crate::FitReport`]s, and a killed-then-resumed search must match an
//! uninterrupted one.
//!
//! Plans are keyed by the engine's **planned trial index**, which is
//! assigned before any parallel execution, so a plan is thread-count
//! invariant by construction. Set `AUTOML_EM_FAULTS` (e.g.
//! `nan@2,panic@5,fail@0,cost@3=2.5,hang@7,kill@9`) to inject faults
//! into a real run — see EXPERIMENTS.md for the reproduction recipe.
//! Malformed specs are rejected loudly: a typo'd `panic@x` aborts the
//! process with a clear message instead of silently degrading to a no-op
//! (which would make a fault-injection experiment pass vacuously).

use std::collections::BTreeMap;
use std::fmt;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The trial returns [`ml::TrialError::Injected`] without running.
    Fail,
    /// The trial runs but its validation score is replaced with NaN
    /// (exercising the non-finite quarantine path).
    NanScore,
    /// The trial panics mid-fit (exercising the `catch_unwind` boundary).
    Panic,
    /// The trial succeeds but its charged cost is multiplied by this
    /// factor (exercising budget accounting under mispriced trials).
    InflateCost(f64),
    /// The trial spins until its cancellation token fires (exercising the
    /// deadline-abandonment path); it then fails as
    /// [`ml::TrialError::DeadlineExceeded`]. A 60 s safety valve prevents
    /// a plan without a deadline from hanging a test run forever.
    Hang,
    /// The search aborts by panic *outside* the trial's `catch_unwind`
    /// boundary, simulating a SIGKILL mid-search: in-flight work is lost
    /// and only journal records fsync'd before this trial survive
    /// (exercising the kill-and-resume path).
    Kill,
}

/// A malformed `AUTOML_EM_FAULTS` entry: which entry and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending comma-separated entry, verbatim.
    pub entry: String,
    /// What was wrong with it.
    pub reason: String,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bad fault spec entry '{}': {} (expected fail@K, nan@K, panic@K, hang@K, kill@K or cost@K=M)",
            self.entry, self.reason
        )
    }
}

impl std::error::Error for FaultSpecError {}

/// A deterministic schedule of faults, keyed by planned trial index.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, Fault>,
}

impl FaultPlan {
    /// A plan that injects nothing (the production default).
    pub fn none() -> Self {
        Self::default()
    }

    /// Builder: inject `fault` at planned trial `trial`.
    pub fn inject(mut self, trial: u64, fault: Fault) -> Self {
        self.faults.insert(trial, fault);
        self
    }

    /// The fault scheduled for `trial`, if any.
    pub fn get(&self, trial: u64) -> Option<Fault> {
        self.faults.get(&trial).copied()
    }

    /// Cost multiplier for `trial`: the injected inflation factor, or 1.
    pub fn cost_multiplier(&self, trial: u64) -> f64 {
        match self.faults.get(&trial) {
            Some(Fault::InflateCost(m)) => *m,
            _ => 1.0,
        }
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Read the `AUTOML_EM_FAULTS` environment variable into a plan.
    /// Unset or empty means "no faults". A *malformed* spec aborts the
    /// process with a clear message: someone running a fault-injection
    /// experiment must never have a typo silently turn it into a clean
    /// run. (Config validation fail-fast, not a library panic — hence
    /// `process::exit`, which also keeps the panic-free clippy gate
    /// meaningful.)
    pub fn from_env() -> Self {
        match std::env::var("AUTOML_EM_FAULTS") {
            Ok(spec) => match Self::parse(&spec) {
                Ok(plan) => plan,
                Err(e) => {
                    eprintln!("fatal: AUTOML_EM_FAULTS={spec:?}: {e}");
                    std::process::exit(2);
                }
            },
            Err(_) => Self::none(),
        }
    }

    /// Parse a comma-separated spec: `fail@K`, `nan@K`, `panic@K`,
    /// `hang@K`, `kill@K`, `cost@K=M`. Empty entries (doubled or
    /// trailing commas) are tolerated; anything else malformed is an
    /// error naming the entry and the reason.
    pub fn parse(spec: &str) -> Result<Self, FaultSpecError> {
        let mut plan = Self::none();
        for entry in spec.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let bad = |reason: &str| FaultSpecError {
                entry: entry.to_owned(),
                reason: reason.to_owned(),
            };
            let Some((kind, rest)) = entry.split_once('@') else {
                return Err(bad("missing '@<trial>'"));
            };
            let (trial_str, arg) = match rest.split_once('=') {
                Some((t, a)) => (t, Some(a)),
                None => (rest, None),
            };
            let trial = trial_str
                .trim()
                .parse::<u64>()
                .map_err(|_| bad("trial index is not a non-negative integer"))?;
            let kind = kind.trim();
            if arg.is_some() && kind != "cost" {
                return Err(bad("only cost@K takes an '=<multiplier>' argument"));
            }
            let fault = match kind {
                "fail" => Fault::Fail,
                "nan" => Fault::NanScore,
                "panic" => Fault::Panic,
                "hang" => Fault::Hang,
                "kill" => Fault::Kill,
                "cost" => {
                    let arg = arg.ok_or_else(|| bad("cost@K needs '=<multiplier>'"))?;
                    let m = arg
                        .trim()
                        .parse::<f64>()
                        .map_err(|_| bad("cost multiplier is not a number"))?;
                    if !m.is_finite() || m <= 0.0 {
                        return Err(bad("cost multiplier must be finite and positive"));
                    }
                    Fault::InflateCost(m)
                }
                other => {
                    return Err(FaultSpecError {
                        entry: entry.to_owned(),
                        reason: format!("unknown fault kind '{other}'"),
                    })
                }
            };
            plan.faults.insert(trial, fault);
        }
        Ok(plan)
    }
}

/// Marker prefix on injected panic messages, used by
/// [`silence_injected_panic_output`] to keep test logs readable.
pub(crate) const INJECTED_PANIC_MSG: &str = "injected fault: panic";

/// Panic payload used by [`Fault::Kill`]. Raised *outside* the trial's
/// `catch_unwind` boundary so it unwinds through the whole engine —
/// the in-test stand-in for a SIGKILL mid-search.
pub(crate) const INJECTED_KILL_MSG: &str = "injected fault: kill (simulated process death)";

/// Install a panic hook that suppresses the default stderr backtrace spam
/// for *injected* panics only; real panics still print through the
/// previous hook. Idempotent; used by the fault-injection tests.
pub fn silence_injected_panic_output() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let matches_marker =
                |s: &str| s.contains(INJECTED_PANIC_MSG) || s.contains(INJECTED_KILL_MSG);
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| matches_marker(s))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<&str>()
                        .map(|s| matches_marker(s))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_lookup() {
        let plan = FaultPlan::none()
            .inject(2, Fault::NanScore)
            .inject(5, Fault::Panic)
            .inject(3, Fault::InflateCost(2.5));
        assert_eq!(plan.get(2), Some(Fault::NanScore));
        assert_eq!(plan.get(5), Some(Fault::Panic));
        assert_eq!(plan.get(0), None);
        assert_eq!(plan.cost_multiplier(3), 2.5);
        assert_eq!(plan.cost_multiplier(2), 1.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn parse_spec_roundtrip() {
        let plan = FaultPlan::parse("nan@2, panic@5,fail@0,cost@3=2.5, hang@7, kill@9,").unwrap();
        assert_eq!(
            plan,
            FaultPlan::none()
                .inject(2, Fault::NanScore)
                .inject(5, Fault::Panic)
                .inject(0, Fault::Fail)
                .inject(3, Fault::InflateCost(2.5))
                .inject(7, Fault::Hang)
                .inject(9, Fault::Kill)
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_specs_with_reasons() {
        for (spec, needle) in [
            ("bogus", "missing '@<trial>'"),
            ("nan@x", "not a non-negative integer"),
            ("panic@-3", "not a non-negative integer"),
            ("cost@1", "needs '=<multiplier>'"),
            ("cost@2=-1", "finite and positive"),
            ("cost@2=nan", "finite and positive"),
            ("cost@2=zzz", "not a number"),
            ("explode@4", "unknown fault kind 'explode'"),
            ("nan@4=2", "only cost@K takes"),
            ("nan@2, panic@x", "not a non-negative integer"),
        ] {
            let err = FaultPlan::parse(spec).expect_err(spec);
            assert!(
                err.to_string().contains(needle),
                "{spec}: expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn valid_prefix_does_not_mask_a_later_error() {
        let err = FaultPlan::parse("fail@0,wat").unwrap_err();
        assert_eq!(err.entry, "wat");
    }
}
