//! The trial write-ahead log: crash-safe checkpointing for a search.
//!
//! Long budgeted runs (the paper's 6-hour Table 5 cells) must survive a
//! process kill without losing the whole search. Every engine threads its
//! trials through a `SearchRun` (crate-internal), which appends one JSONL record per
//! planned / completed / failed trial to an append-only journal and
//! fsyncs at trial boundaries. A later run pointed at the same journal
//! ([`ResumePolicy::Resume`]) replays it instead of repeating work:
//!
//! * **Failed trials are not re-run.** Their recorded [`TrialError`] and
//!   charged budget are restored verbatim — essential for
//!   [`TrialError::DeadlineExceeded`] quarantines, whose outcome depends
//!   on a wall clock that will read differently on the resumed run, and
//!   it is what keeps an abandoned trial's charge from being
//!   double-charged.
//! * **Completed trials are re-fit but not re-charged.** The budget
//!   ledger is deterministic units, not wall-clock, so re-running a
//!   recorded trial is free *by construction*: the recorded charge is
//!   used, and the recomputed score must agree bit-for-bit with the
//!   journal (any disagreement aborts with
//!   [`TrialError::ResumeMismatch`] rather than silently diverging).
//!   Re-fitting regains the live model state (ensembles, stackers,
//!   prediction) that a journal cannot carry.
//! * **Unrecorded trials run fresh**, appending to the same journal.
//!
//! Because the whole search is deterministic at any thread count (see
//! `par`), a journal prefix written before a kill is *identical* to the
//! prefix an uninterrupted run would have written — so a resumed run's
//! [`crate::FitReport`] is byte-identical to the uninterrupted one.
//!
//! ## Journal format
//!
//! Line 1 is a header binding the journal to one search configuration:
//!
//! ```json
//! {"v":1,"engine":"AutoSklearn","seed":7,"config":"9e3779b97f4a7c15","budget_units":7.2}
//! ```
//!
//! `config` is a fingerprint of the search space and data shape; resuming
//! with a different engine, seed, budget or fingerprint is refused.
//! Subsequent lines are trial events:
//!
//! ```json
//! {"ev":"planned","trial":0,"model":"gbm[...]","cost":1.23}
//! {"ev":"done","trial":0,"model":"gbm[...]","val_f1":71.5,"charged":1.23}
//! {"ev":"failed","trial":1,"model":"knn[...]","kind":"fit_panic","a":"boom","charged":0.9}
//! ```
//!
//! Recovery tolerates a torn tail: the journal is truncated to the last
//! fully parseable line before appending resumes — exactly the state an
//! fsync-at-trial-boundary WAL guarantees after a mid-write crash.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::budget::Budget;
use ml::TrialError;
use obs::json::{Json, Obj};
use par::{CancelToken, Deadline};

/// Journal format version written into (and required of) the header.
const JOURNAL_VERSION: u64 = 1;

/// How a search relates to an on-disk journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumePolicy {
    /// No journal: the search runs exactly as it did before this module
    /// existed. The production default.
    Fresh,
    /// Write a new journal at this path (truncating any existing file),
    /// but do not replay anything.
    Checkpoint(PathBuf),
    /// Replay the journal at this path if it exists (verifying
    /// compatibility), then continue appending to it. A missing file
    /// behaves like [`ResumePolicy::Checkpoint`] — so one policy works
    /// for both the first attempt and every retry.
    Resume(PathBuf),
}

impl ResumePolicy {
    /// The journal path, if the policy involves one.
    pub fn journal_path(&self) -> Option<&Path> {
        match self {
            ResumePolicy::Fresh => None,
            ResumePolicy::Checkpoint(p) | ResumePolicy::Resume(p) => Some(p),
        }
    }
}

/// A trial outcome reconstructed from the journal.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Recorded {
    /// The trial completed; `val_f1` and the charged units were recorded.
    Done { val_f1: f64, charged: f64 },
    /// The trial failed; the error and the charged units were recorded.
    Failed { error: TrialError, charged: f64 },
}

impl Recorded {
    fn charged(&self) -> f64 {
        match self {
            Recorded::Done { charged, .. } | Recorded::Failed { charged, .. } => *charged,
        }
    }
}

/// Fingerprint of a search configuration: the shared WAL fingerprint
/// primitive ([`obs::wal::fnv1a_hex`]).
pub(crate) fn config_fingerprint(parts: &[&str]) -> String {
    obs::wal::fnv1a_hex(parts)
}

fn encode_error(o: &mut Obj, e: &TrialError) {
    o.str("kind", e.kind());
    match e {
        TrialError::NonFiniteScore { stage } => {
            o.str("a", stage);
        }
        TrialError::DegenerateInput(s)
        | TrialError::FitPanic(s)
        | TrialError::InvalidBudget(s)
        | TrialError::ResumeMismatch(s)
        | TrialError::JournalIo(s) => {
            o.str("a", s);
        }
        TrialError::BudgetExceeded { needed, remaining } => {
            o.str("a", needed).str("b", remaining);
        }
        TrialError::Injected(s) => {
            o.str("a", s);
        }
        TrialError::AllTrialsFailed { attempted } => {
            o.u64("a_n", *attempted as u64);
        }
        TrialError::DeadlineExceeded => {}
    }
}

fn decode_error(v: &Json) -> Option<TrialError> {
    let kind = v.get("kind")?.as_str()?;
    let a = || v.get("a").and_then(Json::as_str).map(str::to_owned);
    Some(match kind {
        "non_finite_score" => TrialError::NonFiniteScore {
            // `stage` is `&'static str`; map back onto the known stages.
            stage: match v.get("a").and_then(Json::as_str) {
                Some("probability") => "probability",
                _ => "score",
            },
        },
        "degenerate_input" => TrialError::DegenerateInput(a()?),
        "budget_exceeded" => TrialError::BudgetExceeded {
            needed: a()?,
            remaining: v.get("b")?.as_str()?.to_owned(),
        },
        "fit_panic" => TrialError::FitPanic(a()?),
        "invalid_budget" => TrialError::InvalidBudget(a()?),
        // `Injected` is `&'static str`; the only value the fault layer
        // produces is "trial failure".
        "injected" => TrialError::Injected("trial failure"),
        "all_trials_failed" => TrialError::AllTrialsFailed {
            attempted: v.get("a_n")?.as_u64()? as usize,
        },
        "deadline_exceeded" => TrialError::DeadlineExceeded,
        "resume_mismatch" => TrialError::ResumeMismatch(a()?),
        "journal_io" => TrialError::JournalIo(a()?),
        _ => return None,
    })
}

/// Append-side of the WAL. I/O errors after a successful open degrade
/// loudly but non-fatally: the search continues *unjournaled* (a crashed
/// disk should cost the checkpoint, not the run) with a stderr warning
/// and an `obs` event.
struct JournalWriter {
    file: File,
    path: PathBuf,
    dead: bool,
}

impl JournalWriter {
    fn append(&mut self, line: &str) {
        if self.dead {
            return;
        }
        if let Err(e) = self.file.write_all(format!("{line}\n").as_bytes()) {
            self.disable("append", &e);
        }
    }

    fn sync(&mut self) {
        if self.dead {
            return;
        }
        // fsync is the journal's dominant cost; book it to the ledger so
        // "where the budget went" tables show WAL durability overhead
        let _t = obs::ledger::phase("journal_fsync");
        if let Err(e) = self.file.sync_data() {
            self.disable("fsync", &e);
        }
    }

    fn disable(&mut self, op: &str, e: &std::io::Error) {
        eprintln!(
            "warning: search journal {} disabled after {op} error: {e}; \
             the search continues without checkpointing",
            self.path.display()
        );
        obs::emit(
            "journal.error",
            &[
                ("path", obs::Value::Str(self.path.display().to_string())),
                ("op", obs::Value::Str(op.to_owned())),
                ("error", obs::Value::Str(e.to_string())),
            ],
        );
        self.dead = true;
    }
}

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> TrialError {
    TrialError::JournalIo(format!("{what} {}: {e}", path.display()))
}

/// Parse the journal bytes into (header, outcomes, end-of-good-data).
///
/// The torn-tail scan is the shared [`obs::wal::scan_jsonl`]; on top of
/// it this stops at the first structurally valid line that is not a
/// journal record, so `good_end` is the byte offset the file must be
/// truncated to before appending resumes.
#[allow(clippy::type_complexity)]
fn replay_bytes(bytes: &[u8]) -> (Option<Json>, BTreeMap<u64, Recorded>, usize) {
    let mut header = None;
    let mut outcomes = BTreeMap::new();
    let mut good_end = 0usize;
    for line in obs::wal::scan_jsonl(bytes) {
        if header.is_none() {
            header = Some(line.value);
        } else if let Some((trial, outcome)) = decode_trial_line(&line.value) {
            if let Some(outcome) = outcome {
                outcomes.insert(trial, outcome);
            }
        } else {
            break; // structurally valid JSON that isn't a journal record
        }
        good_end = line.end;
    }
    (header, outcomes, good_end)
}

/// Decode one post-header line: `Some((trial, None))` for a `planned`
/// record, `Some((trial, Some(..)))` for an outcome, `None` for garbage.
fn decode_trial_line(v: &Json) -> Option<(u64, Option<Recorded>)> {
    let ev = v.get("ev")?.as_str()?;
    let trial = v.get("trial")?.as_u64()?;
    match ev {
        "planned" => Some((trial, None)),
        "done" => {
            let val_f1 = v.get("val_f1")?.as_f64()?;
            let charged = v.get("charged")?.as_f64()?;
            Some((trial, Some(Recorded::Done { val_f1, charged })))
        }
        "failed" => {
            let error = decode_error(v)?;
            let charged = v.get("charged")?.as_f64()?;
            Some((trial, Some(Recorded::Failed { error, charged })))
        }
        _ => None,
    }
}

/// Shareable read-only view for use inside parallel trial closures:
/// replayed failures and the cancellation token, nothing mutable.
pub(crate) struct ReplayView<'a> {
    outcomes: &'a BTreeMap<u64, Recorded>,
    token: CancelToken,
}

impl ReplayView<'_> {
    /// The recorded failure for `trial`, if the journal says it failed.
    /// Replayed failures must not re-run: their outcome may have depended
    /// on a wall clock (deadline abandonment) or a fixed bug.
    pub(crate) fn failed(&self, trial: u64) -> Option<TrialError> {
        match self.outcomes.get(&trial) {
            Some(Recorded::Failed { error, .. }) => Some(error.clone()),
            _ => None,
        }
    }

    /// The cancellation token trials must run under.
    pub(crate) fn token(&self) -> &CancelToken {
        &self.token
    }
}

/// Per-`fit` crash-safety state: the journal writer, the replay map
/// reconstructed from a prior run, and the wall-clock deadline.
///
/// Engines create one at the top of `fit_resumable` and route every trial
/// through it; with [`ResumePolicy::Fresh`] and no deadline every method
/// is a cheap no-op and the search is exactly the pre-WAL search.
pub(crate) struct SearchRun {
    engine: &'static str,
    deadline: Deadline,
    token: CancelToken,
    journal: Option<JournalWriter>,
    outcomes: BTreeMap<u64, Recorded>,
    replayed: usize,
    deadline_noted: bool,
}

impl SearchRun {
    /// Open (or replay) the journal for one `fit` call.
    ///
    /// `config_parts` fingerprint the search space and data shape; a
    /// journal whose header disagrees on engine, seed, budget or
    /// fingerprint is refused with [`TrialError::ResumeMismatch`].
    pub(crate) fn start(
        engine: &'static str,
        seed: u64,
        budget: &Budget,
        config_parts: &[&str],
        policy: &ResumePolicy,
        deadline: Deadline,
    ) -> Result<Self, TrialError> {
        let config = config_fingerprint(config_parts);
        let mut run = SearchRun {
            engine,
            deadline,
            token: deadline.token(),
            journal: None,
            outcomes: BTreeMap::new(),
            replayed: 0,
            deadline_noted: false,
        };
        match policy {
            ResumePolicy::Fresh => {}
            ResumePolicy::Checkpoint(path) => {
                run.journal = Some(create_journal(path, engine, seed, budget, &config)?);
                obs::emit(
                    "journal.checkpoint",
                    &[
                        ("engine", obs::Value::Str(engine.to_owned())),
                        ("path", obs::Value::Str(path.display().to_string())),
                    ],
                );
            }
            ResumePolicy::Resume(path) => {
                if path.exists() {
                    let (writer, outcomes, truncated) =
                        open_resume(path, engine, seed, budget, &config)?;
                    run.replayed = outcomes.len();
                    run.outcomes = outcomes;
                    run.journal = Some(writer);
                    obs::emit(
                        "journal.resume",
                        &[
                            ("engine", obs::Value::Str(engine.to_owned())),
                            ("path", obs::Value::Str(path.display().to_string())),
                            ("replayed", obs::Value::U64(run.replayed as u64)),
                            ("truncated_bytes", obs::Value::U64(truncated)),
                        ],
                    );
                } else {
                    run.journal = Some(create_journal(path, engine, seed, budget, &config)?);
                    obs::emit(
                        "journal.checkpoint",
                        &[
                            ("engine", obs::Value::Str(engine.to_owned())),
                            ("path", obs::Value::Str(path.display().to_string())),
                        ],
                    );
                }
            }
        }
        Ok(run)
    }

    /// How many trial outcomes were replayed from the journal (test
    /// introspection; production code reports this via the
    /// `journal.resume` obs event instead, never via the `FitReport`,
    /// which must stay byte-identical between fresh and resumed runs).
    #[cfg(test)]
    pub(crate) fn replayed_count(&self) -> usize {
        self.replayed
    }

    /// A clone of the run's cancellation token.
    pub(crate) fn token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Read-only view for parallel trial closures.
    pub(crate) fn view(&self) -> ReplayView<'_> {
        ReplayView {
            outcomes: &self.outcomes,
            token: self.token.clone(),
        }
    }

    /// The recorded failure for `trial` (sequential-engine counterpart of
    /// [`ReplayView::failed`]).
    pub(crate) fn replayed_failure(&self, trial: u64) -> Option<TrialError> {
        match self.outcomes.get(&trial) {
            Some(Recorded::Failed { error, .. }) => Some(error.clone()),
            _ => None,
        }
    }

    /// Whether the wall-clock deadline has passed. Engines poll this at
    /// planning boundaries (batch / rung / roster member) and stop
    /// planning new trials once it fires.
    pub(crate) fn deadline_expired(&self) -> bool {
        self.deadline.expired()
    }

    /// Emit the one-shot `search.deadline` event when an engine stops
    /// early; idempotent.
    pub(crate) fn note_deadline(&mut self) {
        if self.deadline_noted {
            return;
        }
        self.deadline_noted = true;
        obs::counter("automl.deadline_stops").add(1);
        obs::emit(
            "search.deadline",
            &[("engine", obs::Value::Str(self.engine.to_owned()))],
        );
    }

    /// The units to charge for `trial`: the journal's recorded charge
    /// when the trial was replayed (so an inflated or abandoned trial is
    /// never double-charged), else `computed`.
    pub(crate) fn charge(&self, trial: u64, computed: f64) -> f64 {
        match self.outcomes.get(&trial) {
            Some(rec) => rec.charged(),
            None => computed,
        }
    }

    /// Record that `trial` has been planned (WAL intent record). Not
    /// fsync'd; call [`SearchRun::sync`] once per planning batch.
    pub(crate) fn note_planned(&mut self, trial: u64, model: &str, cost: f64) {
        if self.outcomes.contains_key(&trial) {
            return; // already journaled with an outcome by a prior run
        }
        if let Some(j) = self.journal.as_mut() {
            let mut o = Obj::new();
            o.str("ev", "planned")
                .u64("trial", trial)
                .str("model", model);
            o.f64("cost", cost);
            j.append(&o.finish());
        }
    }

    /// Fsync buffered journal writes (the trial-boundary barrier).
    pub(crate) fn sync(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.sync();
        }
    }

    /// Record a completed trial. For a replayed trial this *verifies*
    /// instead of rewriting: the recomputed score must agree bit-for-bit
    /// with the journal, otherwise the run aborts with
    /// [`TrialError::ResumeMismatch`] (a silent divergence would break
    /// the byte-identity contract).
    pub(crate) fn record_done(
        &mut self,
        trial: u64,
        model: &str,
        val_f1: f64,
        charged: f64,
    ) -> Result<(), TrialError> {
        match self.outcomes.get(&trial) {
            Some(Recorded::Done {
                val_f1: recorded, ..
            }) => {
                if recorded.to_bits() != val_f1.to_bits() {
                    return Err(TrialError::ResumeMismatch(format!(
                        "trial {trial} ({model}) recomputed val_f1 {val_f1} != journaled {recorded}; \
                         the search is not deterministic w.r.t. the journal"
                    )));
                }
                Ok(())
            }
            Some(Recorded::Failed { .. }) => Err(TrialError::ResumeMismatch(format!(
                "trial {trial} ({model}) completed on replay but the journal records a failure"
            ))),
            None => {
                if let Some(j) = self.journal.as_mut() {
                    let mut o = Obj::new();
                    o.str("ev", "done").u64("trial", trial).str("model", model);
                    o.f64("val_f1", val_f1).f64("charged", charged);
                    j.append(&o.finish());
                    j.sync();
                }
                Ok(())
            }
        }
    }

    /// Record a failed (quarantined) trial and its charged units.
    /// Replayed failures are verified for agreement the same way
    /// completed trials are.
    pub(crate) fn record_failed(
        &mut self,
        trial: u64,
        model: &str,
        error: &TrialError,
        charged: f64,
    ) -> Result<(), TrialError> {
        match self.outcomes.get(&trial) {
            Some(Recorded::Failed {
                error: recorded, ..
            }) => {
                if recorded != error {
                    return Err(TrialError::ResumeMismatch(format!(
                        "trial {trial} ({model}) replayed failure '{error}' != journaled '{recorded}'"
                    )));
                }
                Ok(())
            }
            Some(Recorded::Done { .. }) => Err(TrialError::ResumeMismatch(format!(
                "trial {trial} ({model}) failed on replay but the journal records a success"
            ))),
            None => {
                if let Some(j) = self.journal.as_mut() {
                    let mut o = Obj::new();
                    o.str("ev", "failed")
                        .u64("trial", trial)
                        .str("model", model);
                    encode_error(&mut o, error);
                    o.f64("charged", charged);
                    j.append(&o.finish());
                    j.sync();
                }
                Ok(())
            }
        }
    }
}

fn header_line(engine: &str, seed: u64, budget: &Budget, config: &str) -> String {
    let mut o = Obj::new();
    o.u64("v", JOURNAL_VERSION)
        .str("engine", engine)
        .u64("seed", seed)
        .str("config", config)
        .f64("budget_units", budget.limit_units());
    o.finish()
}

fn create_journal(
    path: &Path,
    engine: &str,
    seed: u64,
    budget: &Budget,
    config: &str,
) -> Result<JournalWriter, TrialError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create journal dir", &e))?;
        }
    }
    let file = File::create(path).map_err(|e| io_err(path, "create journal", &e))?;
    let mut writer = JournalWriter {
        file,
        path: path.to_owned(),
        dead: false,
    };
    writer.append(&header_line(engine, seed, budget, config));
    writer.sync();
    Ok(writer)
}

#[allow(clippy::type_complexity)]
fn open_resume(
    path: &Path,
    engine: &str,
    seed: u64,
    budget: &Budget,
    config: &str,
) -> Result<(JournalWriter, BTreeMap<u64, Recorded>, u64), TrialError> {
    let bytes = std::fs::read(path).map_err(|e| io_err(path, "read journal", &e))?;
    let (header, outcomes, good_end) = replay_bytes(&bytes);
    let truncated = (bytes.len() - good_end) as u64;
    match header {
        None => {
            // Nothing usable (empty file or torn header): start over.
            let writer = create_journal(path, engine, seed, budget, config)?;
            return Ok((writer, BTreeMap::new(), truncated));
        }
        Some(h) => {
            let mismatch = |what: &str, want: &str, got: &str| {
                TrialError::ResumeMismatch(format!(
                    "journal {} was written for {what} {got}, this run is {what} {want}; \
                     refusing to mix searches",
                    path.display()
                ))
            };
            if h.get("v").and_then(Json::as_u64) != Some(JOURNAL_VERSION) {
                return Err(TrialError::ResumeMismatch(format!(
                    "journal {} has unsupported version {:?}",
                    path.display(),
                    h.get("v")
                )));
            }
            let j_engine = h.get("engine").and_then(Json::as_str).unwrap_or("?");
            if j_engine != engine {
                return Err(mismatch("engine", engine, j_engine));
            }
            let j_seed = h.get("seed").and_then(Json::as_u64);
            if j_seed != Some(seed) {
                return Err(mismatch(
                    "seed",
                    &seed.to_string(),
                    &j_seed.map_or_else(|| "?".into(), |s| s.to_string()),
                ));
            }
            let j_config = h.get("config").and_then(Json::as_str).unwrap_or("?");
            if j_config != config {
                return Err(mismatch("search-space fingerprint", config, j_config));
            }
            let j_budget = h.get("budget_units").and_then(Json::as_f64);
            if j_budget.map(f64::to_bits) != Some(budget.limit_units().to_bits()) {
                return Err(mismatch(
                    "budget (units)",
                    &budget.limit_units().to_string(),
                    &j_budget.map_or_else(|| "?".into(), |b| b.to_string()),
                ));
            }
        }
    }
    if truncated > 0 {
        eprintln!(
            "warning: search journal {} had a torn tail; truncating {truncated} byte(s) \
             back to the last complete record",
            path.display()
        );
        obs::wal::truncate_to(path, good_end as u64)
            .map_err(|e| io_err(path, "truncate torn journal tail", &e))?;
    }
    let file = OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| io_err(path, "open journal for append", &e))?;
    Ok((
        JournalWriter {
            file,
            path: path.to_owned(),
            dead: false,
        },
        outcomes,
        truncated,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "automl_em_journal_{}_{}_{name}.jsonl",
            std::process::id(),
            n
        ))
    }

    fn budget() -> Budget {
        Budget::hours(0.5).expect("valid budget")
    }

    #[test]
    fn fingerprint_is_stable_and_separator_safe() {
        let a = config_fingerprint(&["ab", "c"]);
        let b = config_fingerprint(&["a", "bc"]);
        assert_ne!(a, b);
        assert_eq!(a, config_fingerprint(&["ab", "c"]));
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn errors_roundtrip_through_the_journal_codec() {
        let errors = [
            TrialError::NonFiniteScore { stage: "score" },
            TrialError::NonFiniteScore {
                stage: "probability",
            },
            TrialError::DegenerateInput("x\"y\n".into()),
            TrialError::budget_exceeded(2.0, 0.5),
            TrialError::FitPanic("boom".into()),
            TrialError::InvalidBudget("bad".into()),
            TrialError::Injected("trial failure"),
            TrialError::AllTrialsFailed { attempted: 7 },
            TrialError::DeadlineExceeded,
            TrialError::ResumeMismatch("m".into()),
            TrialError::JournalIo("io".into()),
        ];
        for e in errors {
            let mut o = Obj::new();
            encode_error(&mut o, &e);
            let v = obs::json::parse(&o.finish()).expect("valid json");
            assert_eq!(decode_error(&v).as_ref(), Some(&e), "{e:?}");
        }
    }

    #[test]
    fn fresh_policy_is_inert() {
        let run = SearchRun::start(
            "X",
            1,
            &budget(),
            &["p"],
            &ResumePolicy::Fresh,
            Deadline::none(),
        )
        .expect("fresh run");
        assert_eq!(run.replayed_count(), 0);
        assert!(run.replayed_failure(0).is_none());
        assert_eq!(run.charge(0, 1.5), 1.5);
        assert!(!run.deadline_expired());
    }

    #[test]
    fn checkpoint_then_resume_replays_outcomes_and_charges() {
        let path = tmp("roundtrip");
        let mut run = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Checkpoint(path.clone()),
            Deadline::none(),
        )
        .expect("checkpoint");
        run.note_planned(0, "m0", 1.0);
        run.note_planned(1, "m1", 2.0);
        run.sync();
        run.record_done(0, "m0", 71.25, 1.0).expect("done");
        run.record_failed(1, "m1", &TrialError::DeadlineExceeded, 0.75)
            .expect("failed");
        drop(run);

        let run2 = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Resume(path.clone()),
            Deadline::none(),
        )
        .expect("resume");
        assert_eq!(run2.replayed_count(), 2);
        assert_eq!(run2.replayed_failure(0), None);
        assert_eq!(run2.replayed_failure(1), Some(TrialError::DeadlineExceeded));
        // recorded charges win over recomputed ones — no double-charging
        assert_eq!(run2.charge(0, 99.0), 1.0);
        assert_eq!(run2.charge(1, 99.0), 0.75);
        // unrecorded trials charge what the engine computes
        assert_eq!(run2.charge(2, 3.25), 3.25);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_verifies_recomputed_scores_bit_for_bit() {
        let path = tmp("verify");
        let mut run = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Checkpoint(path.clone()),
            Deadline::none(),
        )
        .expect("checkpoint");
        run.record_done(0, "m0", 71.25, 1.0).expect("done");
        drop(run);
        let mut run2 = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Resume(path.clone()),
            Deadline::none(),
        )
        .expect("resume");
        assert!(run2.record_done(0, "m0", 71.25, 1.0).is_ok());
        let err = run2.record_done(0, "m0", 71.26, 1.0).unwrap_err();
        assert_eq!(err.kind(), "resume_mismatch");
        let err = run2
            .record_failed(0, "m0", &TrialError::DeadlineExceeded, 0.0)
            .unwrap_err();
        assert_eq!(err.kind(), "resume_mismatch");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_refuses_changed_configuration() {
        let path = tmp("config");
        drop(
            SearchRun::start(
                "X",
                7,
                &budget(),
                &["space-v1"],
                &ResumePolicy::Checkpoint(path.clone()),
                Deadline::none(),
            )
            .expect("checkpoint"),
        );
        for (engine, seed, hours, parts) in [
            ("Y", 7u64, 0.5f64, "space-v1"),
            ("X", 8, 0.5, "space-v1"),
            ("X", 7, 0.6, "space-v1"),
            ("X", 7, 0.5, "space-v2"),
        ] {
            let err = SearchRun::start(
                engine,
                seed,
                &Budget::hours(hours).expect("valid"),
                &[parts],
                &ResumePolicy::Resume(path.clone()),
                Deadline::none(),
            )
            .err()
            .unwrap_or_else(|| panic!("{engine}/{seed}/{hours}/{parts} must be refused"));
            assert_eq!(err.kind(), "resume_mismatch");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appending_resumes() {
        let path = tmp("torn");
        let mut run = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Checkpoint(path.clone()),
            Deadline::none(),
        )
        .expect("checkpoint");
        run.record_done(0, "m0", 50.0, 1.0).expect("done");
        drop(run);
        // simulate a mid-write crash: a torn, newline-less partial record
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"ev\":\"done\",\"trial\":1,\"val_")
                .expect("tear");
        }
        let mut run2 = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Resume(path.clone()),
            Deadline::none(),
        )
        .expect("resume past torn tail");
        assert_eq!(run2.replayed_count(), 1);
        // the torn record is gone; trial 1 runs fresh and appends cleanly
        run2.record_done(1, "m1", 60.0, 2.0)
            .expect("append after truncation");
        drop(run2);
        let run3 = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Resume(path.clone()),
            Deadline::none(),
        )
        .expect("second resume");
        assert_eq!(run3.replayed_count(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_of_missing_file_checkpoints_fresh() {
        let path = tmp("missing");
        std::fs::remove_file(&path).ok();
        let run = SearchRun::start(
            "X",
            7,
            &budget(),
            &["space"],
            &ResumePolicy::Resume(path.clone()),
            Deadline::none(),
        )
        .expect("fresh via resume");
        assert_eq!(run.replayed_count(), 0);
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
