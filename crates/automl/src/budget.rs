//! Deterministic training budgets.
//!
//! The paper limits systems by wall-clock hours (1 h default, 6 h in
//! Table 5). Wall clocks are machine-dependent and would make the
//! regenerated tables unstable, so the reproduction counts **budget
//! units**: an abstract cost charged per model fit, growing with
//! training-set size. The mapping is one paper-hour = [`UNITS_PER_HOUR`]
//! units; reports convert units back to paper-hours so the tables can show
//! the same "Training time (h)" columns.

use ml::TrialError;

/// Budget units corresponding to one paper-hour of training.
pub const UNITS_PER_HOUR: f64 = 12.0;

/// Model families with distinct fit costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Histogram gradient boosting (LightGBM-style).
    Gbm,
    /// Oblivious-tree boosting (CatBoost-style).
    CatGbm,
    /// Random forest.
    RandomForest,
    /// Extremely randomized trees.
    ExtraTrees,
    /// k-nearest neighbours.
    Knn,
    /// Logistic regression.
    LogReg,
    /// Linear SVM.
    LinearSvm,
    /// Gaussian naive Bayes.
    NaiveBayes,
    /// Single decision tree.
    Tree,
}

impl ModelFamily {
    /// Relative cost weight of fitting one model of this family.
    pub fn base_cost(self) -> f64 {
        match self {
            ModelFamily::Gbm => 1.2,
            ModelFamily::CatGbm => 1.5,
            ModelFamily::RandomForest => 1.0,
            ModelFamily::ExtraTrees => 0.8,
            ModelFamily::Knn => 0.9, // cheap fit, expensive predict — net similar
            ModelFamily::LogReg => 0.4,
            ModelFamily::LinearSvm => 0.4,
            ModelFamily::NaiveBayes => 0.1,
            ModelFamily::Tree => 0.25,
        }
    }
}

/// Cost in budget units of fitting one model of `family` on `rows`
/// training examples: a fixed overhead plus a size-proportional part.
pub fn fit_cost(family: ModelFamily, rows: usize) -> f64 {
    family.base_cost() * (0.3 + rows as f64 / 2500.0)
}

/// A consumable training budget measured in units.
#[derive(Debug, Clone)]
pub struct Budget {
    limit: f64,
    used: f64,
}

impl Budget {
    /// Budget worth `hours` paper-hours. Errors with
    /// [`TrialError::InvalidBudget`] when `hours` is non-positive or
    /// non-finite instead of panicking.
    pub fn hours(hours: f64) -> Result<Self, TrialError> {
        Self::units(hours * UNITS_PER_HOUR).map_err(|_| {
            TrialError::InvalidBudget(format!("budget hours must be positive, got {hours}"))
        })
    }

    /// Budget with an explicit unit limit. Errors with
    /// [`TrialError::InvalidBudget`] on non-positive or non-finite limits.
    pub fn units(limit: f64) -> Result<Self, TrialError> {
        if !limit.is_finite() || limit <= 0.0 {
            return Err(TrialError::InvalidBudget(format!(
                "budget units must be positive and finite, got {limit}"
            )));
        }
        Ok(Self { limit, used: 0.0 })
    }

    /// Charge `units` (may push usage past the limit — checked afterwards).
    pub fn consume(&mut self, units: f64) {
        self.used += units.max(0.0);
    }

    /// Units spent so far.
    pub fn used(&self) -> f64 {
        self.used
    }

    /// Units remaining (zero-floored).
    pub fn remaining(&self) -> f64 {
        (self.limit - self.used).max(0.0)
    }

    /// True when nothing is left.
    pub fn exhausted(&self) -> bool {
        self.used >= self.limit
    }

    /// True when at least `units` remain — systems call this *before*
    /// starting another fit so they never begin work they cannot finish.
    pub fn can_afford(&self, units: f64) -> bool {
        self.remaining() >= units
    }

    /// Spent budget expressed in paper-hours.
    pub fn used_hours(&self) -> f64 {
        self.used / UNITS_PER_HOUR
    }

    /// Total budget in paper-hours.
    pub fn limit_hours(&self) -> f64 {
        self.limit / UNITS_PER_HOUR
    }

    /// Total budget in units (used by the search journal's config hash so
    /// a resume under a different budget is rejected).
    pub fn limit_units(&self) -> f64 {
        self.limit
    }

    /// Consume everything left (AutoSklearn semantics: the real system
    /// always runs its full time budget).
    pub fn drain(&mut self) {
        self.used = self.used.max(self.limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting() {
        let mut b = Budget::hours(1.0).unwrap();
        assert_eq!(b.remaining(), UNITS_PER_HOUR);
        b.consume(10.0);
        assert_eq!(b.used(), 10.0);
        assert!(!b.exhausted());
        assert!(b.can_afford(UNITS_PER_HOUR - 10.0));
        assert!(!b.can_afford(UNITS_PER_HOUR - 9.9));
        b.consume(UNITS_PER_HOUR);
        assert!(b.exhausted());
        assert_eq!(b.remaining(), 0.0);
    }

    #[test]
    fn hours_roundtrip() {
        let mut b = Budget::hours(6.0).unwrap();
        b.consume(3.0 * UNITS_PER_HOUR);
        assert!((b.used_hours() - 3.0).abs() < 1e-12);
        assert!((b.limit_hours() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn drain_exhausts() {
        let mut b = Budget::hours(2.0).unwrap();
        b.consume(5.0);
        b.drain();
        assert!(b.exhausted());
        assert!((b.used_hours() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cost_grows_with_rows() {
        let small = fit_cost(ModelFamily::Gbm, 300);
        let large = fit_cost(ModelFamily::Gbm, 17_000);
        assert!(large > 4.0 * small, "{small} vs {large}");
        // family ordering preserved at fixed size
        assert!(fit_cost(ModelFamily::NaiveBayes, 1000) < fit_cost(ModelFamily::CatGbm, 1000));
    }

    #[test]
    fn invalid_limits_error_instead_of_panicking() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Budget::hours(bad).unwrap_err();
            assert_eq!(err.kind(), "invalid_budget", "hours({bad})");
            let err = Budget::units(bad).unwrap_err();
            assert_eq!(err.kind(), "invalid_budget", "units({bad})");
        }
        assert!(Budget::hours(0.25).is_ok());
        assert!(Budget::units(1e-6).is_ok());
    }

    #[test]
    fn negative_consumption_ignored() {
        let mut b = Budget::units(5.0).unwrap();
        b.consume(-3.0);
        assert_eq!(b.used(), 0.0);
    }

    /// Property: a search loop that checks `can_afford` before every
    /// `consume` (the contract all engines follow) never spends past the
    /// limit at all — and even a loop that only checks *after* charging
    /// overshoots by at most one fit's cost.
    #[test]
    fn never_overspends_by_more_than_one_fit() {
        let families = [
            ModelFamily::Gbm,
            ModelFamily::CatGbm,
            ModelFamily::RandomForest,
            ModelFamily::Knn,
            ModelFamily::LogReg,
            ModelFamily::NaiveBayes,
        ];
        for seed in 0..64u64 {
            let mut rng = linalg::Rng::new(seed);
            let limit_hours = 0.1 + rng.f64() * 6.0;
            let rows = 10 + rng.below(20_000);

            // disciplined loop: check first, then charge
            let mut b = Budget::hours(limit_hours).unwrap();
            loop {
                let cost = fit_cost(families[rng.below(families.len())], rows);
                if !b.can_afford(cost) {
                    break;
                }
                b.consume(cost);
            }
            assert!(
                b.used() <= b.limit_hours() * UNITS_PER_HOUR + 1e-9,
                "seed {seed}"
            );

            // undisciplined loop: charge first, stop once exhausted
            let mut b = Budget::hours(limit_hours).unwrap();
            let mut max_cost = 0.0f64;
            while !b.exhausted() {
                let cost = fit_cost(families[rng.below(families.len())], rows);
                max_cost = max_cost.max(cost);
                b.consume(cost);
            }
            let overshoot = b.used() - b.limit_hours() * UNITS_PER_HOUR;
            assert!(
                overshoot <= max_cost + 1e-9,
                "seed {seed}: overshoot {overshoot}"
            );
        }
    }

    /// Property: `used_hours` round-trips through [`UNITS_PER_HOUR`] for
    /// arbitrary consumption patterns.
    #[test]
    fn hours_roundtrip_through_units_per_hour() {
        for seed in 0..64u64 {
            let mut rng = linalg::Rng::new(seed);
            let mut b = Budget::hours(0.5 + rng.f64() * 8.0).unwrap();
            for _ in 0..rng.below(40) {
                b.consume(rng.f64() * 5.0);
            }
            assert!(
                (b.used_hours() * UNITS_PER_HOUR - b.used()).abs() < 1e-9,
                "seed {seed}"
            );
            assert!(
                (b.limit_hours() * UNITS_PER_HOUR - (b.used() + b.remaining())).abs() < 1e-9
                    || b.used() >= b.limit_hours() * UNITS_PER_HOUR,
                "seed {seed}: limit/used/remaining must be consistent"
            );
        }
    }
}
