//! Per-trial cost ledger: wall-time attribution to named phases, grouped
//! by scope (usually the AutoML engine that was searching when the time
//! was spent).
//!
//! The paper's evaluation is F1 *under a time budget*, so "where did the
//! budget go" is a first-class result. Instrumentation points across the
//! stack (tokenize, embed, cache-miss, GEMM, fit-epoch, predict, journal
//! fsync, worker busy/idle/steal) charge elapsed nanoseconds to the
//! current scope via [`phase`] (RAII) or [`add`] (pre-measured). The
//! guarded trial boundary installs the engine name as the scope with
//! [`scope`], so the same GEMM phase shows up under `AutoSklearn` or
//! `H2O` depending on who triggered it; time spent outside any trial
//! lands under the `"run"` scope.
//!
//! The ledger is telemetry only — it records wall time and never feeds
//! anything back into computation, so it cannot perturb `FitReport`
//! byte-identity. Aggregation takes one short global lock per closed
//! phase; instrumentation points sit at millisecond granularity (a batch
//! GEMM, a fit, an fsync), never inside inner loops.

use crate::json::{self, Obj};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;

/// Scope used when no [`scope`] guard is active on the thread.
pub const DEFAULT_SCOPE: &str = "run";

#[derive(Debug, Default, Clone, Copy)]
struct Cell {
    ns: u64,
    count: u64,
}

static LEDGER: Mutex<BTreeMap<(String, &'static str), Cell>> = Mutex::new(BTreeMap::new());

thread_local! {
    static SCOPES: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

fn current_scope() -> String {
    SCOPES.with(|s| {
        s.borrow()
            .last()
            .cloned()
            .unwrap_or_else(|| DEFAULT_SCOPE.to_owned())
    })
}

/// Install `name` as the calling thread's ledger scope until the returned
/// guard drops (scopes nest; the innermost wins). The trial boundary uses
/// this to attribute all phase time inside a trial to its engine.
pub fn scope(name: &str) -> ScopeGuard {
    SCOPES.with(|s| s.borrow_mut().push(name.to_owned()));
    ScopeGuard { _priv: () }
}

/// RAII handle restoring the previous scope (see [`scope`]).
#[must_use = "a ledger scope lasts for the lifetime of its guard — bind it with `let`"]
pub struct ScopeGuard {
    _priv: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            let _ = s.borrow_mut().pop();
        });
    }
}

/// Charge `ns` nanoseconds (as `count` occurrences) of `phase` to the
/// calling thread's current scope.
pub fn add_n(phase: &'static str, ns: u64, count: u64) {
    add_scoped(&current_scope(), phase, ns, count);
}

/// Charge `ns` nanoseconds of one occurrence of `phase` to the calling
/// thread's current scope.
pub fn add(phase: &'static str, ns: u64) {
    add_n(phase, ns, 1);
}

/// Charge `ns` nanoseconds to an explicit scope, bypassing the
/// thread-local scope stack (the `par` pool accounts worker busy/idle
/// time under its own `"par"` scope this way).
pub fn add_scoped(scope: &str, phase: &'static str, ns: u64, count: u64) {
    let mut ledger = LEDGER.lock().expect("cost ledger");
    let cell = ledger.entry((scope.to_owned(), phase)).or_default();
    cell.ns += ns;
    cell.count += count;
}

/// Start timing one `phase` occurrence; elapsed wall time is charged to
/// the calling thread's scope when the returned guard drops (including
/// during unwind, so a panicking trial still books its time).
pub fn phase(phase: &'static str) -> PhaseTimer {
    PhaseTimer {
        phase,
        start: Instant::now(),
    }
}

/// RAII timer returned by [`phase`].
#[must_use = "a phase timer measures the scope of its guard — bind it with `let`"]
pub struct PhaseTimer {
    phase: &'static str,
    start: Instant,
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        add(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

/// One aggregated ledger row.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Scope the time was charged to (engine name, `"par"`, or `"run"`).
    pub scope: String,
    /// Phase name ("gemm", "fit_epoch", "journal_fsync", …).
    pub phase: &'static str,
    /// Total nanoseconds charged.
    pub ns: u64,
    /// Number of occurrences charged.
    pub count: u64,
}

impl LedgerEntry {
    /// Total milliseconds charged.
    pub fn ms(&self) -> f64 {
        self.ns as f64 / 1e6
    }
}

/// Read the whole ledger, sorted by (scope, phase).
pub fn ledger_snapshot() -> Vec<LedgerEntry> {
    let ledger = LEDGER.lock().expect("cost ledger");
    ledger
        .iter()
        .map(|((scope, phase), cell)| LedgerEntry {
            scope: scope.clone(),
            phase,
            ns: cell.ns,
            count: cell.count,
        })
        .collect()
}

/// Zero the ledger (scopes on live threads are unaffected).
pub fn reset_ledger() {
    LEDGER.lock().expect("cost ledger").clear();
}

/// Serialize the ledger as a JSON array of
/// `{"scope","phase","ns","count"}` rows, sorted by (scope, phase) — the
/// section `obs_report` diffs between runs.
pub fn ledger_json() -> String {
    json::array(ledger_snapshot().iter().map(|e| {
        let mut o = Obj::new();
        o.str("scope", &e.scope)
            .str("phase", e.phase)
            .u64("ns", e.ns)
            .u64("count", e.count);
        o.finish()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_attribute_to_the_innermost_scope() {
        {
            let _engine = scope("t.led.EngineA");
            add("t_led_gemm", 1_000);
            {
                let _inner = scope("t.led.EngineB");
                add_n("t_led_gemm", 2_000, 2);
            }
            add("t_led_fit", 500);
        }
        add("t_led_outside", 10);
        let snap = ledger_snapshot();
        let get = |s: &str, p: &str| {
            snap.iter()
                .find(|e| e.scope == s && e.phase == p)
                .map(|e| (e.ns, e.count))
        };
        assert_eq!(get("t.led.EngineA", "t_led_gemm"), Some((1_000, 1)));
        assert_eq!(get("t.led.EngineB", "t_led_gemm"), Some((2_000, 2)));
        assert_eq!(get("t.led.EngineA", "t_led_fit"), Some((500, 1)));
        assert_eq!(get(DEFAULT_SCOPE, "t_led_outside"), Some((10, 1)));
    }

    #[test]
    fn phase_timer_books_elapsed_time() {
        let _s = scope("t.led.Timer");
        {
            let _t = phase("t_led_timer_phase");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let entry = ledger_snapshot()
            .into_iter()
            .find(|e| e.scope == "t.led.Timer" && e.phase == "t_led_timer_phase")
            .expect("phase booked on guard drop");
        assert!(entry.ns >= 1_000_000, "booked {}ns", entry.ns);
        assert_eq!(entry.count, 1);
    }

    #[test]
    fn json_rows_are_sorted_and_parseable() {
        add_scoped("t.led.json.B", "t_led_p", 5, 1);
        add_scoped("t.led.json.A", "t_led_p", 3, 1);
        let parsed = crate::json::parse(&ledger_json()).expect("ledger json parses");
        let crate::json::Json::Arr(rows) = parsed else {
            panic!("ledger json must be an array")
        };
        let scopes: Vec<&str> = rows
            .iter()
            .filter_map(|r| r.get("scope").and_then(crate::json::Json::as_str))
            .filter(|s| s.starts_with("t.led.json."))
            .collect();
        assert_eq!(scopes, vec!["t.led.json.A", "t.led.json.B"]);
    }
}
