//! Thread-aware trace collector: per-thread append-only event buffers
//! (span begin/end, instant events) with monotonic timestamps, exported
//! as Chrome trace-event JSON (loadable in Perfetto / chrome://tracing)
//! and as folded-stack text for flamegraphs.
//!
//! The collector is **off by default** and costs one relaxed atomic load
//! per hook when disabled. It turns on when the `AUTOML_EM_TRACE`
//! environment variable is set (the same switch that enables the JSONL
//! event file) or programmatically via [`set_enabled`] (tests and the
//! `obs_report --bench` overhead harness use this). Tracing only ever
//! *records* timestamps — it never feeds anything back into computation —
//! so enabling it cannot perturb `FitReport` byte-identity.
//!
//! Each thread appends to its own buffer (an uncontended mutex shared
//! with a global registry so export can walk buffers of threads that have
//! already exited). Buffers are bounded: past [`MAX_EVENTS_PER_THREAD`]
//! events a thread drops further events and `obs.trace.dropped` counts
//! them, so a runaway loop cannot exhaust memory.

use crate::json::{self, Obj};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::Instant;

/// Hard cap on buffered events per thread; excess events are dropped and
/// counted in the `obs.trace.dropped` counter.
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opened (`ph:"B"` in Chrome trace terms).
    Begin {
        /// Span name.
        name: String,
        /// Nanoseconds since the process trace epoch.
        ts_ns: u64,
    },
    /// The innermost open span closed (`ph:"E"`).
    End {
        /// Nanoseconds since the process trace epoch.
        ts_ns: u64,
    },
    /// A zero-duration marker (`ph:"i"`).
    Instant {
        /// Marker name.
        name: String,
        /// Nanoseconds since the process trace epoch.
        ts_ns: u64,
    },
}

impl TraceEvent {
    /// Timestamp of this event (ns since the trace epoch).
    pub fn ts_ns(&self) -> u64 {
        match self {
            TraceEvent::Begin { ts_ns, .. }
            | TraceEvent::End { ts_ns }
            | TraceEvent::Instant { ts_ns, .. } => *ts_ns,
        }
    }
}

/// All events recorded by one thread, in append order.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    /// Small stable thread id (registration order, starting at 0).
    pub tid: u64,
    /// The thread's events, timestamps non-decreasing.
    pub events: Vec<TraceEvent>,
}

struct Buffer {
    tid: u64,
    events: Vec<TraceEvent>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static REGISTRY: Mutex<Vec<Arc<Mutex<Buffer>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: RefCell<Option<Arc<Mutex<Buffer>>>> = const { RefCell::new(None) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if std::env::var("AUTOML_EM_TRACE").is_ok_and(|v| !v.is_empty()) {
            ENABLED.store(true, Ordering::Relaxed);
        }
        // pin the epoch early so timestamps of late-registering threads
        // share the same zero
        let _ = epoch();
    });
}

/// True when the collector is recording (env var or [`set_enabled`]).
pub fn trace_collecting() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Programmatically force the collector on or off, overriding the
/// `AUTOML_EM_TRACE` default. Used by tests and the overhead harness;
/// takes effect for events recorded after the call.
pub fn set_enabled(on: bool) {
    init_from_env();
    ENABLED.store(on, Ordering::Relaxed);
}

fn with_buffer(f: impl FnOnce(&mut Buffer)) {
    LOCAL.with(|local| {
        let mut local = local.borrow_mut();
        let arc = local.get_or_insert_with(|| {
            let mut reg = REGISTRY.lock().expect("trace registry");
            let arc = Arc::new(Mutex::new(Buffer {
                tid: reg.len() as u64,
                events: Vec::new(),
            }));
            reg.push(Arc::clone(&arc));
            arc
        });
        let mut buf = arc.lock().expect("trace buffer");
        if buf.events.len() >= MAX_EVENTS_PER_THREAD {
            crate::metrics::counter("obs.trace.dropped").inc();
            return;
        }
        f(&mut buf);
    });
}

/// Record a span-begin event on the calling thread (no-op when disabled).
pub fn record_begin(name: &str) {
    if !trace_collecting() {
        return;
    }
    let ts_ns = now_ns();
    with_buffer(|buf| {
        buf.events.push(TraceEvent::Begin {
            name: name.to_owned(),
            ts_ns,
        });
    });
}

/// Record a span-end event on the calling thread (no-op when disabled).
pub fn record_end() {
    if !trace_collecting() {
        return;
    }
    let ts_ns = now_ns();
    with_buffer(|buf| {
        buf.events.push(TraceEvent::End { ts_ns });
    });
}

/// Record a zero-duration instant marker (no-op when disabled).
pub fn instant(name: &str) {
    if !trace_collecting() {
        return;
    }
    let ts_ns = now_ns();
    with_buffer(|buf| {
        buf.events.push(TraceEvent::Instant {
            name: name.to_owned(),
            ts_ns,
        });
    });
}

/// Snapshot every thread's buffer (including exited threads'), ordered by
/// stable thread id.
pub fn trace_snapshot() -> Vec<ThreadTrace> {
    let reg = REGISTRY.lock().expect("trace registry");
    let mut out: Vec<ThreadTrace> = reg
        .iter()
        .map(|arc| {
            let buf = arc.lock().expect("trace buffer");
            ThreadTrace {
                tid: buf.tid,
                events: buf.events.clone(),
            }
        })
        .collect();
    out.sort_by_key(|t| t.tid);
    out
}

/// Drop all recorded events (buffers stay registered; tids are stable
/// within a process lifetime).
pub fn reset_trace() {
    let reg = REGISTRY.lock().expect("trace registry");
    for arc in reg.iter() {
        arc.lock().expect("trace buffer").events.clear();
    }
}

/// Serialize the recorded trace as Chrome trace-event JSON — an object
/// with a `traceEvents` array of `B`/`E`/`i` phase events (timestamps in
/// microseconds), loadable in Perfetto or chrome://tracing.
pub fn to_chrome_json() -> String {
    chrome_json_of(&trace_snapshot())
}

/// Pure serializer behind [`to_chrome_json`]: deterministic over a fixed
/// snapshot (same input ⇒ byte-identical output).
pub fn chrome_json_of(threads: &[ThreadTrace]) -> String {
    let mut events = Vec::new();
    for thread in threads {
        for ev in &thread.events {
            let mut o = Obj::new();
            match ev {
                TraceEvent::Begin { name, ts_ns } => {
                    o.str("name", name)
                        .str("ph", "B")
                        .f64("ts", *ts_ns as f64 / 1e3);
                }
                TraceEvent::End { ts_ns } => {
                    o.str("ph", "E").f64("ts", *ts_ns as f64 / 1e3);
                }
                TraceEvent::Instant { name, ts_ns } => {
                    o.str("name", name)
                        .str("ph", "i")
                        .f64("ts", *ts_ns as f64 / 1e3)
                        .str("s", "t");
                }
            }
            o.u64("pid", 1).u64("tid", thread.tid);
            events.push(o.finish());
        }
    }
    let mut root = Obj::new();
    root.raw("traceEvents", &json::array(events))
        .str("displayTimeUnit", "ms");
    root.finish()
}

/// Render the recorded trace as folded-stack text (`a;b;c <self_us>` per
/// line, one line per unique stack, sorted), the input format of
/// `flamegraph.pl` and speedscope. Self-time is attributed to the stack
/// that was open between consecutive events; stacks still open when a
/// thread's buffer ends get no further time (their tail is unknowable).
pub fn to_folded() -> String {
    folded_of(&trace_snapshot())
}

/// Pure serializer behind [`to_folded`]: deterministic over a fixed
/// snapshot (same input ⇒ byte-identical output).
pub fn folded_of(threads: &[ThreadTrace]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for thread in threads {
        let mut stack: Vec<&str> = Vec::new();
        let mut cursor_ns: u64 = 0;
        for ev in &thread.events {
            let ts = ev.ts_ns();
            if !stack.is_empty() && ts > cursor_ns {
                let key = stack.join(";");
                *folded.entry(key).or_insert(0) += (ts - cursor_ns) / 1_000;
            }
            cursor_ns = ts;
            match ev {
                TraceEvent::Begin { name, .. } => stack.push(name),
                TraceEvent::End { .. } => {
                    // tolerate an unbalanced End (thread inherited a
                    // truncated buffer) instead of corrupting the replay
                    let _ = stack.pop();
                }
                TraceEvent::Instant { .. } => {}
            }
        }
    }
    let mut out = String::new();
    for (stack, us) in folded {
        out.push_str(&format!("{stack} {us}\n"));
    }
    out
}

/// Write `trace.json` (Chrome trace-event) and `trace.folded` (flamegraph
/// folded stacks) into `dir`, returning their paths. No-op files are
/// still written when the trace is empty so run directories are uniform.
pub fn write_trace_files(dir: &str) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let json_path = std::path::Path::new(dir).join("trace.json");
    let folded_path = std::path::Path::new(dir).join("trace.folded");
    std::fs::write(&json_path, to_chrome_json())?;
    std::fs::write(&folded_path, to_folded())?;
    Ok((json_path, folded_path))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All trace tests share the global collector (and the enable
    /// switch), so they run as one sequential test to avoid cross-test
    /// event interleaving.
    #[test]
    fn collector_records_exports_and_resets() {
        reset_trace();
        let was = trace_collecting();

        // disabled collector records nothing (harness never sets
        // AUTOML_EM_TRACE, so the default is off)
        if !was {
            record_begin("t.trace.off");
            record_end();
            assert!(!trace_snapshot().iter().any(|t| {
                t.events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Begin { name, .. } if name == "t.trace.off"))
            }));
        }

        set_enabled(true);

        record_begin("t.trace.outer");
        record_begin("t.trace.inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        record_end();
        instant("t.trace.mark");
        record_end();

        let mine: Vec<ThreadTrace> = trace_snapshot()
            .into_iter()
            .filter(|t| {
                t.events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Begin { name, .. } if name == "t.trace.outer"))
            })
            .collect();
        assert_eq!(mine.len(), 1, "exactly one thread recorded the outer span");
        let events = &mine[0].events;
        let begins = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Begin { .. }))
            .count();
        let ends = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::End { .. }))
            .count();
        assert!(begins >= 2 && ends >= 2, "balanced B/E events");
        // per-thread timestamps are non-decreasing
        for w in events.windows(2) {
            assert!(w[0].ts_ns() <= w[1].ts_ns());
        }

        let snap = trace_snapshot();
        let chrome = chrome_json_of(&snap);
        let parsed = crate::json::parse(&chrome).expect("chrome trace parses");
        let arr = parsed.get("traceEvents").expect("traceEvents key");
        assert!(matches!(arr, crate::json::Json::Arr(v) if !v.is_empty()));
        assert!(chrome.contains(r#""ph":"B""#) && chrome.contains(r#""ph":"E""#));
        assert!(chrome.contains("t.trace.mark"));

        let folded = folded_of(&snap);
        assert!(
            folded.contains("t.trace.outer;t.trace.inner"),
            "nested stack line present: {folded}"
        );

        // exporting the same snapshot twice is byte-identical
        // (replay-stable serialization)
        assert_eq!(chrome, chrome_json_of(&snap));
        assert_eq!(folded, folded_of(&snap));

        reset_trace();
        assert!(trace_snapshot().iter().all(|t| t.events.is_empty()));
        set_enabled(was);
    }
}
