//! Structured event stream: a bounded in-memory ring for diagnostics plus
//! an optional JSONL trace file.
//!
//! Set `AUTOML_EM_TRACE=path.jsonl` before the process starts and every
//! event becomes one JSON object per line in that file (the env var is
//! read once, on first emit). Without the env var, events still land in
//! the ring so tests and failure paths can inspect the recent search
//! trajectory via [`recent_trials`].

use crate::json::Obj;
use crate::metrics::counter;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

/// Maximum events retained in memory.
const RING_CAPACITY: usize = 4096;

/// A dynamically typed event-field value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// String field.
    Str(String),
    /// Float field.
    F64(f64),
    /// Unsigned-integer field.
    U64(u64),
    /// Boolean field.
    Bool(bool),
}

/// One candidate fit inside an AutoML search — the event every engine
/// emits per evaluated model, which makes convergence traces (best-so-far
/// over budget spend) a by-product of any run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialEvent {
    /// Engine name ("AutoSklearn", "AutoGluon", "H2OAutoML", …).
    pub engine: &'static str,
    /// 0-based index of this trial within the engine's search.
    pub trial: usize,
    /// Model family searched ("Gbm", "LogReg", …).
    pub family: String,
    /// Full model description including hyperparameters.
    pub model: String,
    /// Validation F1 (percentage points) of this candidate.
    pub val_f1: f64,
    /// Budget units this fit consumed.
    pub cost_units: f64,
    /// Wall-clock milliseconds the guarded evaluation took. Telemetry
    /// only — wall time never flows into a `FitReport`, which must stay
    /// byte-identical across thread counts and tracing settings.
    pub wall_ms: f64,
    /// Best validation F1 seen so far in this search, including this trial.
    pub best_so_far: f64,
    /// Why the trial failed, when it did (`None` for successful trials).
    /// Failed trials carry `val_f1 = -inf`, never NaN, so stored events
    /// stay comparable.
    pub error: Option<String>,
}

enum Stored {
    Trial(TrialEvent),
    Other,
}

static RING: Mutex<VecDeque<Stored>> = Mutex::new(VecDeque::new());

fn trace_file() -> Option<&'static Mutex<File>> {
    static TRACE: OnceLock<Option<Mutex<File>>> = OnceLock::new();
    TRACE
        .get_or_init(|| {
            let path = std::env::var("AUTOML_EM_TRACE").ok()?;
            if path.is_empty() {
                return None;
            }
            match File::create(&path) {
                Ok(f) => Some(Mutex::new(f)),
                Err(e) => {
                    eprintln!("obs: cannot open AUTOML_EM_TRACE={path}: {e}");
                    None
                }
            }
        })
        .as_ref()
}

/// True when `AUTOML_EM_TRACE` points at a writable trace file.
pub fn trace_enabled() -> bool {
    trace_file().is_some()
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn write_line(kind: &str, fill: impl FnOnce(&mut Obj)) {
    let Some(file) = trace_file() else { return };
    let mut o = Obj::new();
    o.str("ev", kind).u64("ts_ms", now_ms());
    fill(&mut o);
    let mut line = o.finish();
    line.push('\n');
    // one write_all per line under the lock keeps lines whole even with
    // parallel dataset threads emitting concurrently
    let mut f = file.lock().expect("trace file");
    if let Err(e) = f.write_all(line.as_bytes()) {
        eprintln!("obs: trace write failed: {e}");
    }
}

fn push_ring(ev: Stored) {
    let mut ring = RING.lock().expect("event ring");
    if ring.len() >= RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(ev);
}

/// Emit a generic event: a kind tag plus flat key/value fields.
pub fn emit(kind: &str, fields: &[(&str, Value)]) {
    counter("obs.events").inc();
    write_line(kind, |o| {
        for (k, v) in fields {
            match v {
                Value::Str(s) => o.str(k, s),
                Value::F64(f) => o.f64(k, *f),
                Value::U64(u) => o.u64(k, *u),
                Value::Bool(b) => o.bool(k, *b),
            };
        }
    });
    push_ring(Stored::Other);
}

/// Emit one AutoML trial (see [`TrialEvent`]).
pub fn emit_trial(ev: TrialEvent) {
    counter("obs.events").inc();
    write_line("trial", |o| {
        o.str("engine", ev.engine)
            .u64("trial", ev.trial as u64)
            .str("family", &ev.family)
            .str("model", &ev.model)
            .f64("val_f1", ev.val_f1)
            .f64("cost_units", ev.cost_units)
            .f64("wall_ms", ev.wall_ms)
            .f64("best_so_far", ev.best_so_far);
        if let Some(err) = &ev.error {
            o.str("error", err);
        }
    });
    push_ring(Stored::Trial(ev));
}

/// The trial events still in the ring, oldest first, optionally filtered
/// by engine name.
pub fn recent_trials(engine: Option<&str>) -> Vec<TrialEvent> {
    RING.lock()
        .expect("event ring")
        .iter()
        .filter_map(|s| match s {
            Stored::Trial(t) if engine.is_none_or(|e| t.engine == e) => Some(t.clone()),
            _ => None,
        })
        .collect()
}

/// Drop everything in the in-memory ring.
pub fn reset_events() {
    RING.lock().expect("event ring").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_filters_by_engine_and_stays_bounded() {
        // one sequential test (not several) because the ring is global and
        // flooding it would race with a concurrent filtering assertion
        let mk = |engine, trial| TrialEvent {
            engine,
            trial,
            family: "Gbm".into(),
            model: "gbm(...)".into(),
            val_f1: 50.0,
            cost_units: 1.0,
            wall_ms: 0.25,
            best_so_far: 50.0,
            error: None,
        };
        emit_trial(mk("t.ev.EngineA", 0));
        emit_trial(mk("t.ev.EngineB", 0));
        emit_trial(mk("t.ev.EngineA", 1));
        let a = recent_trials(Some("t.ev.EngineA"));
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].trial, 0);
        assert_eq!(a[1].trial, 1);
        assert!(recent_trials(None).len() >= 3);

        for i in 0..(RING_CAPACITY + 10) {
            emit("t.ev.flood", &[("i", Value::U64(i as u64))]);
        }
        assert!(RING.lock().unwrap().len() <= RING_CAPACITY);
    }

    #[test]
    fn trace_disabled_without_env_var() {
        // the test harness never sets AUTOML_EM_TRACE; emitting must be a
        // cheap no-op on the file path
        if std::env::var("AUTOML_EM_TRACE").is_err() {
            assert!(!trace_enabled());
        }
        emit("t.ev.noop", &[("ok", Value::Bool(true))]);
    }
}
