//! Hand-rolled JSON writing *and reading* — just enough for the event
//! stream, run manifests and the AutoML search journal (objects, arrays,
//! strings, numbers, booleans), with correct string escaping and
//! non-finite floats mapped to `null`.
//!
//! The reader ([`parse`]) exists so the search journal can be replayed
//! without pulling in an external JSON crate. Numbers are kept as their
//! raw source token ([`Json::Num`]) and only converted on demand
//! ([`Json::as_u64`] / [`Json::as_f64`]), so 64-bit seeds round-trip
//! exactly instead of being squeezed through an `f64`.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number (`null` when not finite, so the
/// line stays parseable no matter what a metric produced).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// An in-progress JSON object; fields are appended in call order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    n: usize,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            n: 0,
        }
    }

    fn key(&mut self, k: &str) {
        if self.n > 0 {
            self.buf.push(',');
        }
        self.n += 1;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Add a float field.
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Add an unsigned-integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// Serialize a list of already-serialized JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// A parsed JSON value.
///
/// Numbers stay as their raw source token so integer precision is never
/// lost; use the `as_*` accessors to convert.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as the raw token from the source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; fields in source order, duplicate keys kept as-is.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Look up a field of an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number token that parses exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Why [`parse`] rejected its input, with the byte offset of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parse one JSON value from `src`, requiring that nothing but whitespace
/// follows it.
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_owned(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == want {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", want as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(err(start, "invalid number"));
    }
    let tok = &bytes[start..*pos];
    // `str::from_utf8` cannot fail on this ASCII subset, but avoid unwrap.
    let tok = std::str::from_utf8(tok).map_err(|_| err(start, "invalid number"))?;
    if tok.parse::<f64>().is_err() {
        return Err(err(start, "invalid number"));
    }
    Ok(Json::Num(tok.to_owned()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 scalar: copy its bytes verbatim. The
                // input came in as &str, so the sequence is valid.
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && (bytes[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&bytes[start..*pos])
                    .map_err(|_| err(start, "invalid utf-8 in string"))?;
                out.push_str(s);
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_nasty_strings() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn object_builder_shapes() {
        let mut o = Obj::new();
        o.str("name", "x")
            .u64("n", 3)
            .f64("v", 1.5)
            .bool("ok", true);
        o.raw("arr", &array(["1".into(), "2".into()]));
        assert_eq!(
            o.finish(),
            r#"{"name":"x","n":3,"v":1.5,"ok":true,"arr":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = Obj::new();
        o.f64("bad", f64::NAN).f64("inf", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"bad":null,"inf":null}"#);
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let mut o = Obj::new();
        o.str("name", "x\"y\\z\nw")
            .u64("seed", u64::MAX)
            .f64("score", 72.125)
            .f64("bad", f64::NAN)
            .bool("ok", true);
        o.raw("arr", &array(["1".into(), "\"two\"".into()]));
        let v = parse(&o.finish()).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x\"y\\z\nw"));
        // 64-bit integers survive exactly (no f64 round-trip)
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(v.get("score").and_then(Json::as_f64), Some(72.125));
        assert_eq!(v.get("bad"), Some(&Json::Null));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let arr = v.get("arr").unwrap();
        assert_eq!(
            arr,
            &Json::Arr(vec![Json::Num("1".into()), Json::Str("two".into())])
        );
    }

    #[test]
    fn shortest_roundtrip_floats_survive_exactly() {
        for x in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5e-7] {
            let mut s = String::new();
            write_f64(&mut s, x);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn parse_rejects_garbage_with_offsets() {
        assert_eq!(parse("").unwrap_err().offset, 0);
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("{\"a\":1} trailing").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("\"unterminated").is_err());
        let e = parse("   ?").unwrap_err();
        assert_eq!(e.offset, 3);
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = parse(r#"{"s":"café → ok","n":-1.5e3}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("café → ok"));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(-1500.0));
        // non-integers refuse u64 conversion
        assert_eq!(v.get("n").and_then(Json::as_u64), None);
    }
}
