//! Hand-rolled JSON writing — just enough for the event stream and run
//! manifests (objects, arrays, strings, numbers, booleans), with correct
//! string escaping and non-finite floats mapped to `null`.

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` to `out` as a JSON number (`null` when not finite, so the
/// line stays parseable no matter what a metric produced).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// An in-progress JSON object; fields are appended in call order.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    n: usize,
}

impl Obj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            n: 0,
        }
    }

    fn key(&mut self, k: &str) {
        if self.n > 0 {
            self.buf.push(',');
        }
        self.n += 1;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Add a float field.
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Add an unsigned-integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-serialized JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the JSON text.
    pub fn finish(self) -> String {
        let mut buf = self.buf;
        buf.push('}');
        buf
    }
}

/// Serialize a list of already-serialized JSON values as an array.
pub fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_nasty_strings() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn object_builder_shapes() {
        let mut o = Obj::new();
        o.str("name", "x")
            .u64("n", 3)
            .f64("v", 1.5)
            .bool("ok", true);
        o.raw("arr", &array(["1".into(), "2".into()]));
        assert_eq!(
            o.finish(),
            r#"{"name":"x","n":3,"v":1.5,"ok":true,"arr":[1,2]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut o = Obj::new();
        o.f64("bad", f64::NAN).f64("inf", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"bad":null,"inf":null}"#);
    }

    #[test]
    fn empty_object_and_array() {
        assert_eq!(Obj::new().finish(), "{}");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }
}
