//! A global registry of named counters, gauges and fixed-bucket
//! histograms. Handles are `&'static` — resolve them once (registry lookup
//! takes a lock) and update them lock-free afterwards (one atomic op).

use crate::json::{self, Obj};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A floating-point metric that can be set or accumulated (f64 bits in an
/// atomic word; `add` uses a CAS loop).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0.0f64.to_bits()))
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Accumulate `v` onto the value.
    pub fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(now) => cur = now,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.set(0.0);
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds (an
/// implicit `+inf` bucket catches the rest).
#[derive(Debug)]
pub struct Histogram {
    bounds: Box<[f64]>,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: Gauge,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: Gauge::default(),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum.get()
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) from the
    /// bucket counts. See [`quantile_from_buckets`] for the estimation
    /// rule and its worst-case error bound.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from_buckets(&self.buckets(), q)
    }

    /// `(upper_bound, count)` per bucket; the final bound is `+inf`.
    pub fn buckets(&self) -> Vec<(f64, u64)> {
        self.bounds
            .iter()
            .copied()
            .chain([f64::INFINITY])
            .zip(self.buckets.iter().map(|b| b.load(Ordering::Relaxed)))
            .collect()
    }

    fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.reset();
    }
}

/// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) from fixed-bucket
/// counts (`(upper_bound, count)` pairs as produced by
/// [`Histogram::buckets`] — the final bound may be `+inf`).
///
/// The estimate interpolates linearly inside the bucket the quantile
/// rank lands in, assuming observations are spread uniformly across the
/// bucket. **Worst-case error is therefore the width of that bucket**
/// (all observations could sit at either edge). Two documented
/// distortions at the extremes: the first bucket's lower edge is taken
/// as `min(0, bound)` (every histogram in this codebase records
/// non-negative quantities), and a quantile landing in the `+inf`
/// overflow bucket is clamped to the largest finite bound — there is no
/// upper edge to interpolate toward, so tail quantiles saturate there.
/// Returns 0.0 when the buckets are empty.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total: u64 = buckets.iter().map(|(_, n)| n).sum();
    if total == 0 {
        return 0.0;
    }
    let rank = q.clamp(0.0, 1.0) * total as f64;
    let mut seen = 0u64;
    let mut lower = f64::NAN; // set per-bucket below
    for (i, (upper, n)) in buckets.iter().enumerate() {
        lower = if i == 0 {
            upper.min(0.0)
        } else {
            buckets[i - 1].0
        };
        if *n == 0 {
            continue;
        }
        let before = seen as f64;
        seen += n;
        if (seen as f64) < rank {
            continue;
        }
        if upper.is_infinite() {
            return lower; // overflow bucket: saturate at last finite bound
        }
        let frac = ((rank - before) / *n as f64).clamp(0.0, 1.0);
        return lower + frac * (upper - lower);
    }
    // ranks beyond the last non-empty bucket (q == 1.0 edge): its bound
    if lower.is_nan() {
        0.0
    } else {
        lower
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Get-or-register the counter named `name`.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Get-or-register the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// Get-or-register the histogram named `name`. The bounds of the first
/// registration win; later calls may pass any bounds.
pub fn histogram(name: &str, bounds: &[f64]) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry");
    match reg
        .entry(name.to_owned())
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric {name} already registered with a different type"),
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram `(count, sum, (upper_bound, bucket_count) list)`.
    Histogram(u64, f64, Vec<(f64, u64)>),
}

impl MetricSnapshot {
    /// Serialize as a JSON value.
    pub fn to_json(&self) -> String {
        match self {
            MetricSnapshot::Counter(v) => v.to_string(),
            MetricSnapshot::Gauge(v) => {
                let mut s = String::new();
                json::write_f64(&mut s, *v);
                s
            }
            MetricSnapshot::Histogram(count, sum, buckets) => {
                let mut o = Obj::new();
                o.u64("count", *count).f64("sum", *sum).raw(
                    "buckets",
                    &json::array(buckets.iter().map(|(ub, n)| {
                        let mut b = Obj::new();
                        b.f64("le", *ub).u64("n", *n);
                        b.finish()
                    })),
                );
                o.finish()
            }
        }
    }
}

/// Read every registered metric, sorted by name.
pub fn snapshot() -> Vec<(String, MetricSnapshot)> {
    let reg = registry().lock().expect("metrics registry");
    reg.iter()
        .map(|(name, m)| {
            let value = match m {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram(h.count(), h.sum(), h.buckets()),
            };
            (name.clone(), value)
        })
        .collect()
}

/// Zero every metric and forget all registrations. Existing `&'static`
/// handles stay valid but are no longer visible in [`snapshot`].
pub fn reset_metrics() {
    let mut reg = registry().lock().expect("metrics registry");
    for m in reg.values() {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
    reg.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("t.m.counter");
        c.add(2);
        c.inc();
        assert_eq!(c.get(), 3);
        let g = gauge("t.m.gauge");
        g.set(1.5);
        g.add(0.25);
        assert!((g.get() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let h = histogram("t.m.hist", &[1.0, 10.0]);
        for v in [0.5, 0.9, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 14.1).abs() < 1e-9);
        let buckets = h.buckets();
        assert_eq!(buckets[0], (1.0, 2));
        assert_eq!(buckets[1], (10.0, 1));
        assert_eq!(buckets[2].1, 1);
        assert!(buckets[2].0.is_infinite());
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = histogram("t.m.quant", &[10.0, 20.0, 40.0]);
        for _ in 0..50 {
            h.observe(5.0);
        }
        for _ in 0..30 {
            h.observe(15.0);
        }
        for _ in 0..20 {
            h.observe(30.0);
        }
        // rank 50 sits exactly at the first bucket's upper edge
        assert!((h.quantile(0.5) - 10.0).abs() < 1e-9);
        // rank 95 lands in the third bucket: 20 + 0.75·(40−20) = 35
        assert!((h.quantile(0.95) - 35.0).abs() < 1e-9);
        // rank 99: 20 + 0.95·20 = 39
        assert!((h.quantile(0.99) - 39.0).abs() < 1e-9);
        // an observation in the +inf overflow bucket saturates tail
        // quantiles at the largest finite bound
        h.observe(1e9);
        assert_eq!(h.quantile(1.0), 40.0);
        // empty histograms report 0
        assert_eq!(
            quantile_from_buckets(&[(1.0, 0), (f64::INFINITY, 0)], 0.5),
            0.0
        );
    }

    #[test]
    fn same_name_returns_same_handle() {
        let a = counter("t.m.same") as *const Counter;
        let b = counter("t.m.same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_contains_registered_metrics() {
        counter("t.m.snap.c").add(7);
        gauge("t.m.snap.g").set(2.0);
        let snap = snapshot();
        let get = |n: &str| snap.iter().find(|(k, _)| k == n).map(|(_, v)| v.clone());
        assert_eq!(get("t.m.snap.c"), Some(MetricSnapshot::Counter(7)));
        assert_eq!(get("t.m.snap.g"), Some(MetricSnapshot::Gauge(2.0)));
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let c = counter("t.m.concurrent");
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
