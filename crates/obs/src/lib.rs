//! # obs — zero-dependency tracing, metrics and search-trajectory telemetry
//!
//! The paper's evaluation reports *training time* per (dataset × system)
//! cell and budget behaviour, not just F1 — so every layer of this
//! reproduction needs to be observable: where does encode time go, how
//! does each AutoML engine spend its budget, which model families dominate
//! a search. This crate is the shared substrate for that, built on `std`
//! alone (builds are offline; no serde, no tracing, no prometheus):
//!
//! * [`span`](mod@span) — hierarchical spans with wall-clock **and** deterministic
//!   budget-unit timing, collected into a global, thread-safe tree. Spans
//!   opened on different threads become separate roots and are merged by
//!   name, so parallel per-dataset runs aggregate into one readable tree.
//! * [`metrics`] — a global registry of named counters, gauges and
//!   fixed-bucket histograms. Handles are `&'static` and lock-free on the
//!   hot path (one atomic op per update).
//! * [`events`] — a structured event stream. Every event is kept in a
//!   bounded in-memory ring (for diagnostics and tests) and, when the
//!   `AUTOML_EM_TRACE=path.jsonl` environment variable is set, appended to
//!   that file as one hand-rolled JSON object per line. [`TrialEvent`] is
//!   the per-candidate-fit record every AutoML engine emits, so search
//!   convergence traces fall out of a run for free.
//! * [`trace`] — a thread-aware trace collector (per-thread append-only
//!   buffers of span begin/end and instant events with monotonic
//!   timestamps), off by default and enabled by `AUTOML_EM_TRACE`,
//!   exporting Chrome trace-event JSON (Perfetto / chrome://tracing) and
//!   folded-stack text for flamegraphs.
//! * [`ledger`] — the per-trial cost ledger: wall-time attribution to
//!   named phases (tokenize/embed/GEMM/fit/fsync/…) grouped by the
//!   engine scope that triggered them, the "where the budget went"
//!   tables of the end-of-run summary.
//! * [`summary`] — a human-readable end-of-run summary (span tree, cost
//!   ledger and metrics snapshot) printed to stderr, no env var required.
//! * [`manifest`] — a per-run manifest JSON (run identity, config,
//!   metrics snapshot, span tree) the bench binaries write next to their
//!   TSV artifacts.
//!
//! Everything is safe to use from multiple threads; all globals can be
//! [`reset`] between logical runs (tests do this).

#![warn(missing_docs)]

pub mod events;
pub mod json;
pub mod ledger;
pub mod manifest;
pub mod metrics;
pub mod span;
pub mod summary;
pub mod trace;
pub mod wal;

pub use events::{emit, recent_trials, trace_enabled, TrialEvent, Value};
pub use ledger::{ledger_snapshot, LedgerEntry};
pub use manifest::Manifest;
pub use metrics::{
    counter, gauge, histogram, quantile_from_buckets, snapshot, Counter, Gauge, Histogram,
};
pub use span::{span, span_tree, SpanGuard, SpanRecord};
pub use summary::{print_summary, render_summary};
pub use trace::{trace_collecting, write_trace_files, ThreadTrace, TraceEvent};

/// Clear all global observability state: span tree, cost ledger, trace
/// buffers, metrics registry and the in-memory event ring. The JSONL
/// trace file (if any) stays open.
///
/// Meant for the boundary between logical runs in one process (e.g. a
/// harness regenerating two tables back to back); concurrently
/// instrumented threads will simply start repopulating the globals.
pub fn reset() {
    span::reset_spans();
    metrics::reset_metrics();
    events::reset_events();
    ledger::reset_ledger();
    trace::reset_trace();
}
