//! Hierarchical spans with wall-clock and budget-unit timing.
//!
//! A [`span`] call opens a frame on a thread-local stack and returns an
//! RAII [`SpanGuard`]; dropping the guard closes the frame and attaches
//! the finished record to its parent frame, or — for a root span — to the
//! global collector. Records with the same name under the same parent are
//! merged (durations and unit charges summed, `count` incremented), so a
//! loop over 12 datasets collapses into one line per stage instead of 12
//! copies, and parallel threads aggregate into a single readable tree.

use crate::json::{self, Obj};
use std::cell::RefCell;
use std::sync::Mutex;
use std::time::Instant;

/// A finished (sub)tree of spans.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name ("pipeline/fit").
    pub name: String,
    /// Total wall-clock milliseconds across all merged instances.
    pub wall_ms: f64,
    /// Total deterministic budget units charged via [`SpanGuard::add_units`].
    pub units: f64,
    /// How many span instances were merged into this record.
    pub count: u64,
    /// Child spans, in first-seen order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// Serialize this subtree as a JSON object.
    pub fn to_json(&self) -> String {
        let mut o = Obj::new();
        o.str("name", &self.name)
            .f64("wall_ms", self.wall_ms)
            .f64("units", self.units)
            .u64("count", self.count);
        if !self.children.is_empty() {
            o.raw(
                "children",
                &json::array(self.children.iter().map(SpanRecord::to_json)),
            );
        }
        o.finish()
    }
}

/// Merge `rec` into `records`, by name, recursively.
fn merge_into(records: &mut Vec<SpanRecord>, rec: SpanRecord) {
    if let Some(existing) = records.iter_mut().find(|r| r.name == rec.name) {
        existing.wall_ms += rec.wall_ms;
        existing.units += rec.units;
        existing.count += rec.count;
        for child in rec.children {
            merge_into(&mut existing.children, child);
        }
    } else {
        records.push(rec);
    }
}

struct Frame {
    name: String,
    start: Instant,
    units: f64,
    children: Vec<SpanRecord>,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

static ROOTS: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

/// Open a span; it closes (and records itself) when the guard drops.
pub fn span(name: impl Into<String>) -> SpanGuard {
    let name = name.into();
    crate::trace::record_begin(&name);
    let depth = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(Frame {
            name,
            start: Instant::now(),
            units: 0.0,
            children: Vec::new(),
        });
        stack.len()
    });
    SpanGuard {
        closed: false,
        depth,
    }
}

/// RAII handle for an open span (see [`span`]).
///
/// The guard remembers how deep the thread's span stack was when it
/// opened; on drop it closes **every frame at or below that depth**, not
/// just the top one. A frame left open by a leaked inner guard (e.g.
/// `mem::forget`, or an unwind path that skipped a drop) is therefore
/// folded into the tree as a child instead of corrupting the stack for
/// every later span on the thread — the span tree and trace export stay
/// well-formed even when a guarded trial panics.
#[must_use = "a span measures the scope of its guard — bind it with `let`"]
pub struct SpanGuard {
    closed: bool,
    depth: usize,
}

impl SpanGuard {
    /// Charge deterministic budget units to the innermost open span.
    pub fn add_units(&self, units: f64) {
        STACK.with(|stack| {
            if let Some(frame) = stack.borrow_mut().last_mut() {
                frame.units += units.max(0.0);
            }
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // close our own frame plus any deeper frames whose guards
            // never ran (leaked or skipped during an unwind) — innermost
            // first, so stragglers nest as children of their parent
            while stack.len() >= self.depth {
                let Some(frame) = stack.pop() else { return };
                crate::trace::record_end();
                let rec = SpanRecord {
                    name: frame.name,
                    wall_ms: frame.start.elapsed().as_secs_f64() * 1e3,
                    units: frame.units,
                    count: 1,
                    children: frame.children,
                };
                match stack.last_mut() {
                    Some(parent) => merge_into(&mut parent.children, rec),
                    None => merge_into(&mut ROOTS.lock().expect("span collector"), rec),
                }
            }
        });
    }
}

/// Snapshot of the global (merged, root-level) span tree.
pub fn span_tree() -> Vec<SpanRecord> {
    ROOTS.lock().expect("span collector").clone()
}

/// Clear the global span tree (open spans on live threads are unaffected
/// until they close).
pub fn reset_spans() {
    ROOTS.lock().expect("span collector").clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pull one named root out of the global tree (tests share globals, so
    /// each test uses unique span names).
    fn take_root(name: &str) -> SpanRecord {
        let mut roots = ROOTS.lock().expect("span collector");
        let idx = roots
            .iter()
            .position(|r| r.name == name)
            .unwrap_or_else(|| panic!("root {name} not recorded"));
        roots.swap_remove(idx)
    }

    #[test]
    fn nesting_builds_a_tree() {
        {
            let _a = span("t.nest.outer");
            {
                let _b = span("t.nest.inner");
            }
            {
                let _c = span("t.nest.inner");
            }
        }
        let root = take_root("t.nest.outer");
        assert_eq!(root.count, 1);
        assert_eq!(root.children.len(), 1, "same-name children merge");
        assert_eq!(root.children[0].count, 2);
        assert!(root.wall_ms >= root.children[0].wall_ms);
    }

    #[test]
    fn units_attach_to_innermost_span() {
        {
            let _a = span("t.units.outer");
            let b = span("t.units.inner");
            b.add_units(3.5);
            b.add_units(-1.0); // negative charges ignored, like Budget
        }
        let root = take_root("t.units.outer");
        assert_eq!(root.units, 0.0);
        assert_eq!(root.children[0].units, 3.5);
    }

    #[test]
    fn parallel_threads_merge_roots() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    let _g = span("t.par.root");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let root = take_root("t.par.root");
        assert_eq!(root.count, 4);
    }

    #[test]
    fn leaked_inner_guard_is_closed_by_its_parent() {
        {
            let _outer = span("t.leak.outer");
            let inner = span("t.leak.inner");
            std::mem::forget(inner); // guard never drops
        }
        let root = take_root("t.leak.outer");
        assert_eq!(root.children.len(), 1, "leaked frame folded into parent");
        assert_eq!(root.children[0].name, "t.leak.inner");
        // the thread's stack is clean again: the next span is a fresh root
        {
            let _g = span("t.leak.after");
        }
        let after = take_root("t.leak.after");
        assert!(after.children.is_empty());
    }

    #[test]
    fn json_shape() {
        let rec = SpanRecord {
            name: "a".into(),
            wall_ms: 1.5,
            units: 2.0,
            count: 1,
            children: vec![SpanRecord {
                name: "b".into(),
                wall_ms: 0.5,
                units: 0.0,
                count: 3,
                children: Vec::new(),
            }],
        };
        assert_eq!(
            rec.to_json(),
            r#"{"name":"a","wall_ms":1.5,"units":2,"count":1,"children":[{"name":"b","wall_ms":0.5,"units":0,"count":3}]}"#
        );
    }
}
