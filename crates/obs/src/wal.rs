//! Shared torn-tail recovery for append-only JSONL write-ahead logs.
//!
//! Three subsystems keep a JSONL WAL with the same durability discipline
//! (append one record per line, fsync at record boundaries): the search
//! journal (`automl::journal`), the serving swap journal
//! (`em-serve::reload::SwapJournal`) and the streaming record ledger
//! (`em-stream::ledger`). All three must agree on what a crash can leave
//! behind and how to recover from it, so the recovery scan lives here,
//! once:
//!
//! * A record is **good** iff it is newline-terminated, valid UTF-8 and
//!   parses as one JSON value. fsync-at-record-boundary guarantees every
//!   record before the last sync is good.
//! * The scan stops at the **first** bad line. A torn tail (partial
//!   record with no newline, or half-flushed bytes that don't parse) is
//!   the expected crash artifact; anything after it is untrusted.
//! * Appending resumes only after the file is truncated back to the end
//!   of the last good record ([`truncate_to`]).
//!
//! Callers layer their own record semantics (headers, event kinds) on
//! top of the scan; a *structurally* valid line that is semantically
//! foreign is the caller's decision to stop at, which is why
//! [`WalLine::end`] carries a per-line truncation offset rather than the
//! scan returning a single global one.

use crate::json::{self, Json};
use std::io;
use std::path::Path;

/// One fully recovered WAL record: its parsed JSON value and the byte
/// offset just past its terminating newline (i.e. the length the file
/// would have if this were the last record kept).
pub struct WalLine {
    /// The parsed record.
    pub value: Json,
    /// Byte offset just past this record's newline.
    pub end: usize,
}

/// Scan `bytes` as JSONL, returning every leading good record in order.
///
/// Stops at the first torn line (missing newline), non-UTF-8 line or
/// JSON parse failure — everything from that point on is a crash
/// artifact and is not returned. `scan_jsonl(b).last().map_or(0, |l|
/// l.end)` is the offset to truncate to before appending resumes.
pub fn scan_jsonl(bytes: &[u8]) -> Vec<WalLine> {
    let mut lines = Vec::new();
    let mut start = 0usize;
    while start < bytes.len() {
        let Some(nl) = bytes[start..].iter().position(|&b| b == b'\n') else {
            break; // torn tail: no terminating newline
        };
        let Ok(text) = std::str::from_utf8(&bytes[start..start + nl]) else {
            break;
        };
        let Ok(value) = json::parse(text) else {
            break;
        };
        start += nl + 1;
        lines.push(WalLine { value, end: start });
    }
    lines
}

/// The truncation offset for `lines` as returned by [`scan_jsonl`]: just
/// past the last good record, `0` when nothing was recoverable.
pub fn good_end(lines: &[WalLine]) -> usize {
    lines.last().map_or(0, |l| l.end)
}

/// Truncate the WAL at `path` down to `len` bytes — the torn-tail repair
/// step before a recovered WAL is reopened for append.
pub fn truncate_to(path: &Path, len: u64) -> io::Result<()> {
    let f = std::fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(len)
}

/// FNV-1a 64-bit over `parts`, rendered as fixed-width hex. The shared
/// header-fingerprint primitive: stable, std-only, and good enough to
/// bind a WAL to one configuration (search space, schema, …). Parts are
/// separated in the hash so `["ab","c"]` and `["a","bc"]` differ.
pub fn fnv1a_hex(parts: &[&str]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_recovers_all_complete_records() {
        let bytes = b"{\"a\":1}\n{\"b\":2}\n";
        let lines = scan_jsonl(bytes);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].value.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(lines[0].end, 8);
        assert_eq!(lines[1].end, bytes.len());
        assert_eq!(good_end(&lines), bytes.len());
    }

    #[test]
    fn scan_stops_at_torn_tail_without_newline() {
        let bytes = b"{\"a\":1}\n{\"b\":";
        let lines = scan_jsonl(bytes);
        assert_eq!(lines.len(), 1);
        assert_eq!(good_end(&lines), 8);
    }

    #[test]
    fn scan_stops_at_unparseable_line_and_ignores_the_rest() {
        // a half-flushed record that *did* get a newline, followed by a
        // record that must not be trusted
        let bytes = b"{\"a\":1}\n{\"b\":\n{\"c\":3}\n";
        let lines = scan_jsonl(bytes);
        assert_eq!(lines.len(), 1);
        assert_eq!(good_end(&lines), 8);
    }

    #[test]
    fn scan_stops_at_non_utf8_line() {
        let mut bytes = b"{\"a\":1}\n".to_vec();
        bytes.extend_from_slice(&[0xff, 0xfe, b'\n']);
        let lines = scan_jsonl(&bytes);
        assert_eq!(lines.len(), 1);
        assert_eq!(good_end(&lines), 8);
    }

    #[test]
    fn empty_input_recovers_nothing() {
        assert!(scan_jsonl(b"").is_empty());
        assert_eq!(good_end(&[]), 0);
    }

    #[test]
    fn truncate_to_repairs_a_torn_tail_on_disk() {
        let path = std::env::temp_dir().join(format!(
            "obs_wal_truncate_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&path, b"{\"a\":1}\n{\"torn").unwrap();
        let lines = scan_jsonl(&std::fs::read(&path).unwrap());
        truncate_to(&path, good_end(&lines) as u64).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"a\":1}\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_is_stable_and_separator_safe() {
        let a = fnv1a_hex(&["ab", "c"]);
        let b = fnv1a_hex(&["a", "bc"]);
        assert_ne!(a, b);
        assert_eq!(a, fnv1a_hex(&["ab", "c"]));
        assert_eq!(a.len(), 16);
    }
}
