//! Per-run manifest JSON: run identity and config, a metrics snapshot and
//! the span tree, written next to the TSV artifacts so every `results/`
//! table carries its full run context (the reproducibility practice the
//! EM benchmarking literature insists on).

use crate::events::Value;
use crate::json::{self, Obj};
use crate::ledger::ledger_json;
use crate::metrics::snapshot;
use crate::span::span_tree;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Builder for one run's manifest.
#[derive(Debug)]
pub struct Manifest {
    name: String,
    config: Vec<(String, Value)>,
}

impl Manifest {
    /// Start a manifest for the run called `name` ("table2", …).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            config: Vec::new(),
        }
    }

    /// Record one run-configuration field (seed, scale, dataset filter…).
    pub fn config(&mut self, key: &str, value: Value) -> &mut Self {
        self.config.push((key.to_owned(), value));
        self
    }

    /// Serialize the manifest, capturing the *current* metrics snapshot,
    /// span tree and cost ledger.
    pub fn to_json(&self) -> String {
        let mut config = Obj::new();
        for (k, v) in &self.config {
            match v {
                Value::Str(s) => config.str(k, s),
                Value::F64(f) => config.f64(k, *f),
                Value::U64(u) => config.u64(k, *u),
                Value::Bool(b) => config.bool(k, *b),
            };
        }
        let mut metrics = Obj::new();
        for (name, value) in snapshot() {
            metrics.raw(&name, &value.to_json());
        }
        let mut o = Obj::new();
        o.str("run", &self.name)
            .u64(
                "written_at_ms",
                SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_millis() as u64)
                    .unwrap_or(0),
            )
            .raw("config", &config.finish())
            .raw("metrics", &metrics.finish())
            .raw(
                "spans",
                &json::array(span_tree().iter().map(|r| r.to_json())),
            )
            .raw("ledger", &ledger_json());
        o.finish()
    }

    /// Write `<dir>/<name>_manifest.json` (creating `dir` if needed).
    pub fn write_to(&self, dir: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = Path::new(dir).join(format!("{}_manifest.json", self.name));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::counter;
    use crate::span::span;

    #[test]
    fn manifest_roundtrips_through_disk() {
        counter("t.man.counter").add(2);
        {
            let _g = span("t.man.span");
        }
        let mut m = Manifest::new("t_man_demo");
        m.config("seed", Value::U64(42))
            .config("scale", Value::F64(0.06))
            .config("only", Value::Str("S-BR".into()));
        let dir = std::env::temp_dir().join("obs_manifest_test");
        let path = m.write_to(dir.to_str().unwrap()).unwrap();
        assert!(path.to_string_lossy().ends_with("t_man_demo_manifest.json"));
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.starts_with('{') && text.ends_with('}'));
        assert!(text.contains(r#""run":"t_man_demo""#), "{text}");
        assert!(text.contains(r#""seed":42"#));
        assert!(text.contains(r#""scale":0.06"#));
        assert!(text.contains("t.man.counter"));
        assert!(text.contains("t.man.span"));
    }
}
