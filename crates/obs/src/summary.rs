//! Human-readable end-of-run summary: the merged span tree plus a metrics
//! snapshot, rendered as text. Printed to stderr so it never pollutes the
//! table markdown/TSV a binary writes to stdout.

use crate::metrics::{snapshot, MetricSnapshot};
use crate::span::{span_tree, SpanRecord};

fn fmt_wall(ms: f64) -> String {
    if ms >= 60_000.0 {
        format!("{:.1}min", ms / 60_000.0)
    } else if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

fn render_span(out: &mut String, rec: &SpanRecord, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", rec.name);
    let mut line = format!("  {label:<42} wall {:>9}", fmt_wall(rec.wall_ms));
    if rec.units > 0.0 {
        line.push_str(&format!("  units {:>8.2}", rec.units));
    }
    if rec.count > 1 {
        line.push_str(&format!("  ×{}", rec.count));
    }
    line.push('\n');
    out.push_str(&line);
    for child in &rec.children {
        render_span(out, child, depth + 1);
    }
}

/// Render the summary (span tree + metrics) as multi-line text.
pub fn render_summary() -> String {
    let mut out = String::from("== automl-em run summary ==\n");
    let tree = span_tree();
    if !tree.is_empty() {
        out.push_str("spans:\n");
        for root in &tree {
            render_span(&mut out, root, 0);
        }
    }
    let metrics = snapshot();
    if !metrics.is_empty() {
        out.push_str("metrics:\n");
        for (name, value) in &metrics {
            match value {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!("  {name:<44} {v}\n"));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!("  {name:<44} {v:.4}\n"));
                }
                MetricSnapshot::Histogram(count, sum, _) => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        sum / *count as f64
                    };
                    out.push_str(&format!(
                        "  {name:<44} n={count} sum={sum:.2} mean={mean:.3}\n"
                    ));
                }
            }
        }
    }
    if tree.is_empty() && metrics.is_empty() {
        out.push_str("(nothing recorded)\n");
    }
    out
}

/// Print [`render_summary`] to stderr.
pub fn print_summary() {
    eprint!("{}", render_summary());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, gauge};
    use crate::span::span;

    #[test]
    fn summary_mentions_spans_and_metrics() {
        {
            let outer = span("t.sum.root");
            outer.add_units(3.0);
            let _inner = span("t.sum.child");
        }
        counter("t.sum.counter").add(5);
        gauge("t.sum.gauge").set(0.25);
        let text = render_summary();
        assert!(text.contains("t.sum.root"), "{text}");
        assert!(text.contains("t.sum.child"), "{text}");
        assert!(text.contains("units"), "{text}");
        assert!(text.contains("t.sum.counter"), "{text}");
        assert!(text.contains("0.2500"), "{text}");
    }

    #[test]
    fn wall_formatting_scales() {
        assert_eq!(fmt_wall(3.17), "3.2ms");
        assert_eq!(fmt_wall(2500.0), "2.50s");
        assert_eq!(fmt_wall(120_000.0), "2.0min");
    }
}
