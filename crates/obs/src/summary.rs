//! Human-readable end-of-run summary: the merged span tree plus a metrics
//! snapshot, rendered as text. Printed to stderr so it never pollutes the
//! table markdown/TSV a binary writes to stdout.

use crate::ledger::{ledger_snapshot, LedgerEntry};
use crate::metrics::{quantile_from_buckets, snapshot, MetricSnapshot};
use crate::span::{span_tree, SpanRecord};

fn fmt_wall(ms: f64) -> String {
    if ms >= 60_000.0 {
        format!("{:.1}min", ms / 60_000.0)
    } else if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.1}ms")
    }
}

fn render_span(out: &mut String, rec: &SpanRecord, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!("{indent}{}", rec.name);
    let mut line = format!("  {label:<42} wall {:>9}", fmt_wall(rec.wall_ms));
    if rec.units > 0.0 {
        line.push_str(&format!("  units {:>8.2}", rec.units));
    }
    if rec.count > 1 {
        line.push_str(&format!("  ×{}", rec.count));
    }
    line.push('\n');
    out.push_str(&line);
    for child in &rec.children {
        render_span(out, child, depth + 1);
    }
}

/// Render the per-scope "where the budget went" tables from the cost
/// ledger: one block per scope (engine, `par`, `run`), each phase with
/// its wall time, share of the scope total, and occurrence count.
fn render_ledger(out: &mut String, entries: &[LedgerEntry]) {
    if entries.is_empty() {
        return;
    }
    out.push_str("cost ledger (where the budget went):\n");
    let mut idx = 0;
    while idx < entries.len() {
        let scope = &entries[idx].scope;
        let end = entries[idx..]
            .iter()
            .position(|e| &e.scope != scope)
            .map_or(entries.len(), |p| idx + p);
        let group = &entries[idx..end];
        let total_ns: u64 = group.iter().map(|e| e.ns).sum();
        out.push_str(&format!(
            "  [{scope}]  total {}\n",
            fmt_wall(total_ns as f64 / 1e6)
        ));
        let mut sorted: Vec<&LedgerEntry> = group.iter().collect();
        sorted.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.phase.cmp(b.phase)));
        for e in sorted {
            let share = if total_ns == 0 {
                0.0
            } else {
                100.0 * e.ns as f64 / total_ns as f64
            };
            out.push_str(&format!(
                "    {:<24} wall {:>9}  {share:>5.1}%  ×{}\n",
                e.phase,
                fmt_wall(e.ms()),
                e.count
            ));
        }
        idx = end;
    }
}

/// Render the summary (span tree + cost ledger + metrics) as multi-line
/// text. Histograms are shown as `n`/`mean` plus interpolated
/// p50/p95/p99 (see [`quantile_from_buckets`] for the error bound)
/// instead of a raw bucket dump.
pub fn render_summary() -> String {
    let mut out = String::from("== automl-em run summary ==\n");
    let tree = span_tree();
    if !tree.is_empty() {
        out.push_str("spans:\n");
        for root in &tree {
            render_span(&mut out, root, 0);
        }
    }
    let ledger = ledger_snapshot();
    render_ledger(&mut out, &ledger);
    let metrics = snapshot();
    if !metrics.is_empty() {
        out.push_str("metrics:\n");
        for (name, value) in &metrics {
            match value {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&format!("  {name:<44} {v}\n"));
                }
                MetricSnapshot::Gauge(v) => {
                    out.push_str(&format!("  {name:<44} {v:.4}\n"));
                }
                MetricSnapshot::Histogram(count, sum, buckets) => {
                    let mean = if *count == 0 {
                        0.0
                    } else {
                        sum / *count as f64
                    };
                    let p50 = quantile_from_buckets(buckets, 0.50);
                    let p95 = quantile_from_buckets(buckets, 0.95);
                    let p99 = quantile_from_buckets(buckets, 0.99);
                    out.push_str(&format!(
                        "  {name:<44} n={count} mean={mean:.3} p50={p50:.3} p95={p95:.3} p99={p99:.3}\n"
                    ));
                }
            }
        }
    }
    if tree.is_empty() && ledger.is_empty() && metrics.is_empty() {
        out.push_str("(nothing recorded)\n");
    }
    out
}

/// Print [`render_summary`] to stderr.
pub fn print_summary() {
    eprint!("{}", render_summary());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{counter, gauge};
    use crate::span::span;

    #[test]
    fn summary_mentions_spans_and_metrics() {
        {
            let outer = span("t.sum.root");
            outer.add_units(3.0);
            let _inner = span("t.sum.child");
        }
        counter("t.sum.counter").add(5);
        gauge("t.sum.gauge").set(0.25);
        let text = render_summary();
        assert!(text.contains("t.sum.root"), "{text}");
        assert!(text.contains("t.sum.child"), "{text}");
        assert!(text.contains("units"), "{text}");
        assert!(text.contains("t.sum.counter"), "{text}");
        assert!(text.contains("0.2500"), "{text}");
    }

    #[test]
    fn summary_renders_ledger_and_percentiles() {
        {
            let _s = crate::ledger::scope("t.sum.Engine");
            crate::ledger::add_n("t_sum_gemm", 3_000_000, 4);
            crate::ledger::add("t_sum_fit", 1_000_000);
        }
        let h = crate::metrics::histogram("t.sum.hist", &[1.0, 10.0]);
        for v in [0.5, 0.5, 5.0, 5.0] {
            h.observe(v);
        }
        let text = render_summary();
        assert!(text.contains("cost ledger"), "{text}");
        assert!(text.contains("[t.sum.Engine]"), "{text}");
        assert!(text.contains("t_sum_gemm"), "{text}");
        assert!(text.contains("75.0%"), "gemm is 3ms of 4ms: {text}");
        assert!(text.contains("p50=") && text.contains("p95="), "{text}");
        assert!(!text.contains("sum="), "raw bucket/sum dump replaced");
    }

    #[test]
    fn wall_formatting_scales() {
        assert_eq!(fmt_wall(3.17), "3.2ms");
        assert_eq!(fmt_wall(2500.0), "2.50s");
        assert_eq!(fmt_wall(120_000.0), "2.0min");
    }
}
