//! Free functions on `&[f32]` slices.
//!
//! These are the hot kernels of the stack (dot products inside matmuls and
//! kNN, softmax inside every attention head and classifier). They take plain
//! slices so callers never pay for a wrapper type.

/// Dot product. Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four-lane manual unroll: keeps independent accumulator chains so the
    // compiler can use SIMD without relying on float reassociation.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        acc[0] += a[o] * b[o];
        acc[1] += a[o + 1] * b[o + 1];
        acc[2] += a[o + 2] * b[o + 2];
        acc[3] += a[o + 3] * b[o + 3];
    }
    let mut sum = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// `y += alpha * x`, in place.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
pub fn scale(x: &mut [f32], alpha: f32) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean (L2) norm.
pub fn norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two vectors.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// Cosine similarity in `[-1, 1]`; returns 0 when either vector is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Sum of entries.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean (0 for the empty slice).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f32
    }
}

/// Index of the maximum entry (first on ties); panics on empty input.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if v > x[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax, in place.
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut total = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        total += *v;
    }
    if total > 0.0 {
        let inv = 1.0 / total;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically stable softmax into a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable `ln(1 + e^x)`.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Elementwise addition into a new vector.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Elementwise subtraction into a new vector.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Elementwise product into a new vector.
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Elementwise absolute difference into a new vector (used by similarity
/// feature builders and by DeepMatcher's comparison layer).
pub fn abs_diff(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "abs_diff: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).collect()
}

/// Average several equal-length vectors; panics on empty or ragged input.
pub fn average(vectors: &[Vec<f32>]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "average of zero vectors");
    let dim = vectors[0].len();
    let mut out = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "average: ragged input");
        axpy(1.0, v, &mut out);
    }
    scale(&mut out, 1.0 / vectors.len() as f32);
    out
}

/// L2-normalize in place; zero vectors are left untouched.
pub fn normalize(x: &mut [f32]) {
    let n = norm(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        // length > 4 exercises the unrolled path + remainder
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..11).map(|i| (i * 2) as f32).collect();
        let expect: f32 = (0..11).map(|i| (i * i * 2) as f32).sum();
        assert_eq!(dot(&a, &b), expect);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let probs = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((sum(&probs) - 1.0).abs() < 1e-6);
        for p in &probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-6);
        }
        let big = softmax(&[1e30, 0.0]);
        assert!(big.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn softmax_preserves_order() {
        let probs = softmax(&[0.5, 2.0, -1.0]);
        assert!(probs[1] > probs[0] && probs[0] > probs[2]);
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
    }

    #[test]
    fn cosine_bounds_and_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn average_of_vectors() {
        let avg = average(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) >= 0.0);
    }

    #[test]
    fn sq_dist_and_abs_diff() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(abs_diff(&[1.0, -2.0], &[3.0, 2.0]), vec![2.0, 4.0]);
    }
}
