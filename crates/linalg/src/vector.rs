//! Free functions on `&[f32]` slices.
//!
//! These are the hot kernels of the stack (dot products inside matmuls and
//! kNN, softmax inside every attention head and classifier). They take plain
//! slices so callers never pay for a wrapper type.
//!
//! **Reduction kernels and the two-build dispatch.** [`dot`] and the fused
//! [`cosine`] follow the runtime-dispatch scheme of `crate::gemm`: a
//! baseline build and an AVX2 build of the *same fixed accumulator
//! structure* ([`WIDE_LANES`] independent lanes, element `i` in lane
//! `i % WIDE_LANES`, a fixed pairwise reduction tree, a scalar tail),
//! selected per call by runtime CPU detection. For [`cosine`] the AVX2
//! build is literally the same source recompiled under
//! `#[target_feature(enable = "avx2")]`; for [`dot`] (and `Matrix::matvec`
//! on top of it) LLVM's autovectorizer stops at 128-bit for the plain
//! one-bank loop, so its AVX2 build spells the identical lane structure
//! out with explicit 256-bit intrinsics instead (`avx::dot_wide`): lane
//! `8g + l` lives in lane `l` of ymm accumulator `g`, advanced by the same
//! multiply-and-add per element in the same order, then spilled into the
//! same reduction tree and tail. Either way the builds are
//! **bit-identical** — the structure, not the instruction encoding,
//! determines the bits — and `tests/kernel_conformance.rs` enforces it
//! against the exported `*_generic` baselines.
//!
//! The three sums inside [`cosine`] each use the *same* accumulator
//! structure as [`dot`], so `cosine(a, b)` is bit-identical to the
//! decomposed form `(dot(a, b) / (norm(a) · norm(b))).clamp(-1, 1)` — the
//! contract [`cosine_with_norms`] relies on to let blocking loops hoist
//! norms out of their pair loops.

/// Independent accumulator lanes in [`dot`] and each fused [`cosine`] sum.
///
/// Element `i` of the main loop always lands in lane `i % WIDE_LANES`,
/// and lanes collapse through a fixed pairwise tree — the structure, not
/// the SIMD width, determines the bits of the result. 32 lanes = four
/// 8-float AVX2 registers, enough independent add chains to hide FP-add
/// latency at 768-dim embedding length.
pub const WIDE_LANES: usize = 32;

/// Collapse a lane bank through a fixed pairwise tree (16+16, 8+8, …).
#[inline(always)]
fn reduce_lanes(acc: &[f32; WIDE_LANES]) -> f32 {
    let mut tmp = *acc;
    let mut w = WIDE_LANES / 2;
    while w >= 1 {
        for c in 0..w {
            tmp[c] += tmp[c + w];
        }
        w /= 2;
    }
    tmp[0]
}

/// The one dot-product loop both builds compile (crate-visible so
/// `Matrix::matvec` can inline it into its own two-build dispatch).
#[inline(always)]
pub(crate) fn dot_body(a: &[f32], b: &[f32]) -> f32 {
    const L: usize = WIDE_LANES;
    let mut acc = [0.0f32; L];
    let blocks = a.len() / L;
    for (av, bv) in a[..blocks * L]
        .chunks_exact(L)
        .zip(b[..blocks * L].chunks_exact(L))
    {
        for c in 0..L {
            acc[c] += av[c] * bv[c];
        }
    }
    let mut sum = reduce_lanes(&acc);
    for i in blocks * L..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// Explicit 256-bit forms of the wide-lane kernels, for the AVX2 builds
/// where recompiling the scalar body is not enough (see the module docs).
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx {
    use super::{reduce_lanes, WIDE_LANES};
    use core::arch::x86_64::*;

    /// [`super::dot_body`]'s accumulator structure in four ymm registers:
    /// lane `8g + l` is lane `l` of accumulator `g`, each advanced by
    /// `+= a[i] * b[i]` in increasing-`i` order exactly as the scalar
    /// build advances `acc[i % WIDE_LANES]`, then spilled back into the
    /// lane array for the shared reduction tree and scalar tail. Same
    /// float ops on the same values in the same order → identical bits.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support, and `b` must be at least
    /// as long as `a`.
    #[inline(always)]
    pub(crate) unsafe fn dot_wide(a: &[f32], b: &[f32]) -> f32 {
        const L: usize = WIDE_LANES;
        debug_assert!(b.len() >= a.len());
        let blocks = a.len() / L;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        for blk in 0..blocks {
            let pa = a.as_ptr().add(blk * L);
            let pb = b.as_ptr().add(blk * L);
            acc0 = _mm256_add_ps(
                acc0,
                _mm256_mul_ps(_mm256_loadu_ps(pa), _mm256_loadu_ps(pb)),
            );
            acc1 = _mm256_add_ps(
                acc1,
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(8)), _mm256_loadu_ps(pb.add(8))),
            );
            acc2 = _mm256_add_ps(
                acc2,
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(16)), _mm256_loadu_ps(pb.add(16))),
            );
            acc3 = _mm256_add_ps(
                acc3,
                _mm256_mul_ps(_mm256_loadu_ps(pa.add(24)), _mm256_loadu_ps(pb.add(24))),
            );
        }
        let mut lanes = [0.0f32; L];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc0);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(8), acc1);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(16), acc2);
        _mm256_storeu_ps(lanes.as_mut_ptr().add(24), acc3);
        let mut sum = reduce_lanes(&lanes);
        for i in blocks * L..a.len() {
            sum += a[i] * b[i];
        }
        sum
    }
}

/// The AVX2 build of [`dot`]: `avx::dot_wide`, the hand-vectorized form
/// of [`dot_body`]'s lane structure.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    avx::dot_wide(a, b)
}

/// Dot product. Panics if lengths differ.
///
/// Dispatches once per call between the baseline and AVX2 compilations of
/// the same loop (see the module docs); both produce identical bits.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just detected at runtime.
        return unsafe { dot_avx2(a, b) };
    }
    dot_body(a, b)
}

/// The baseline (no `target_feature`) compilation of [`dot`] — exported so
/// the kernel conformance suite can prove the SIMD dispatch is
/// bit-transparent. Not a fast path; call [`dot`].
pub fn dot_generic(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    dot_body(a, b)
}

/// `y += alpha * x`, in place.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Scale a vector in place.
pub fn scale(x: &mut [f32], alpha: f32) {
    for v in x {
        *v *= alpha;
    }
}

/// Euclidean (L2) norm.
pub fn norm(x: &[f32]) -> f32 {
    dot(x, x).sqrt()
}

/// Squared Euclidean distance between two vectors.
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    let mut s = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        s += d * d;
    }
    s
}

/// The one fused-cosine loop both builds compile: `a·a`, `b·b` and `a·b`
/// accumulated in a single pass, each sum with exactly the accumulator
/// structure of [`dot_body`] — so every sum is bit-identical to the
/// corresponding standalone [`dot`] call.
#[inline(always)]
fn cosine_sums_body(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    const L: usize = WIDE_LANES;
    let mut aa = [0.0f32; L];
    let mut bb = [0.0f32; L];
    let mut ab = [0.0f32; L];
    let blocks = a.len() / L;
    for (av, bv) in a[..blocks * L]
        .chunks_exact(L)
        .zip(b[..blocks * L].chunks_exact(L))
    {
        for c in 0..L {
            aa[c] += av[c] * av[c];
            bb[c] += bv[c] * bv[c];
            ab[c] += av[c] * bv[c];
        }
    }
    let mut saa = reduce_lanes(&aa);
    let mut sbb = reduce_lanes(&bb);
    let mut sab = reduce_lanes(&ab);
    for i in blocks * L..a.len() {
        saa += a[i] * a[i];
        sbb += b[i] * b[i];
        sab += a[i] * b[i];
    }
    (saa, sbb, sab)
}

/// The AVX2 compilation of [`cosine_sums_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn cosine_sums_avx2(a: &[f32], b: &[f32]) -> (f32, f32, f32) {
    cosine_sums_body(a, b)
}

/// Turn the three fused sums into the clamped similarity.
#[inline]
fn cosine_finish(aa: f32, bb: f32, ab: f32) -> f32 {
    let na = aa.sqrt();
    let nb = bb.sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (ab / (na * nb)).clamp(-1.0, 1.0)
}

/// Cosine similarity in `[-1, 1]`; returns 0 when either vector is zero.
///
/// Computed in a **single pass**: one loop accumulates `a·a`, `b·b` and
/// `a·b` together (the old implementation walked the inputs three times —
/// `norm`, `norm`, `dot`). Each sum uses the accumulator structure of
/// [`dot`], so the result is bit-identical to
/// `(dot(a, b) / (norm(a) * norm(b))).clamp(-1.0, 1.0)`.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just detected at runtime.
        let (aa, bb, ab) = unsafe { cosine_sums_avx2(a, b) };
        return cosine_finish(aa, bb, ab);
    }
    let (aa, bb, ab) = cosine_sums_body(a, b);
    cosine_finish(aa, bb, ab)
}

/// The baseline compilation of [`cosine`] — exported for the conformance
/// suite's SIMD-vs-scalar bit-equality checks. Not a fast path.
pub fn cosine_generic(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let (aa, bb, ab) = cosine_sums_body(a, b);
    cosine_finish(aa, bb, ab)
}

/// [`cosine`] with both norms supplied by the caller, for blocking loops
/// that compare every row of one set against every row of another: hoist
/// `norm(row)` out of the pair loop and pay one pass (the dot) per pair
/// instead of three. Bit-identical to [`cosine`] when `na == norm(a)` and
/// `nb == norm(b)` (the shared-accumulator-structure contract in the
/// module docs).
pub fn cosine_with_norms(a: &[f32], b: &[f32], na: f32, nb: f32) -> f32 {
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Sum of entries.
pub fn sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Arithmetic mean (0 for the empty slice).
pub fn mean(x: &[f32]) -> f32 {
    if x.is_empty() {
        0.0
    } else {
        sum(x) / x.len() as f32
    }
}

/// Index of the maximum entry (first on ties); panics on empty input.
///
/// Uses the workspace's NaN-total-ordering comparator
/// ([`crate::stats::nan_worst_cmp_f32`]): NaN is the worst value, so a
/// NaN-leading slice returns the first real maximum instead of silently
/// sticking at index 0 (`v > x[0]` is false for every `v` when `x[0]` is
/// NaN — the old behavior). An all-NaN slice returns 0.
pub fn argmax(x: &[f32]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate().skip(1) {
        if crate::stats::nan_worst_cmp_f32(v, x[best]) == std::cmp::Ordering::Greater {
            best = i;
        }
    }
    best
}

/// Numerically stable softmax, in place.
///
/// An all-`-inf` slice (a fully masked attention row, a classifier whose
/// every logit underflowed) becomes the **uniform** distribution: the
/// naive path would compute `-inf - -inf = NaN` and hand an unnormalized
/// NaN buffer to callers — and `automl::trial`'s quarantine keys off
/// non-finite probabilities, so a masked-out row must not look like a
/// diverged model. Slices *containing* NaN still propagate NaN (that IS
/// the diverged-model signal).
pub fn softmax_inplace(x: &mut [f32]) {
    if x.is_empty() {
        return;
    }
    let max = x.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        // `fold` with `f32::max` ignores NaN, so max == -inf covers both
        // the all--inf and the all-NaN-or--inf slice; only the genuinely
        // all--inf one gets the defined uniform outcome.
        if x.iter().all(|v| *v == f32::NEG_INFINITY) {
            let u = 1.0 / x.len() as f32;
            for v in x.iter_mut() {
                *v = u;
            }
            return;
        }
    }
    let mut total = 0.0;
    for v in x.iter_mut() {
        *v = (*v - max).exp();
        total += *v;
    }
    if total > 0.0 {
        let inv = 1.0 / total;
        for v in x.iter_mut() {
            *v *= inv;
        }
    }
}

/// Numerically stable softmax into a new vector.
pub fn softmax(x: &[f32]) -> Vec<f32> {
    let mut out = x.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Stable `ln(1 + e^x)`.
pub fn softplus(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Elementwise addition into a new vector.
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Elementwise subtraction into a new vector.
pub fn sub(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Elementwise product into a new vector.
pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "hadamard: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).collect()
}

/// Elementwise absolute difference into a new vector (used by similarity
/// feature builders and by DeepMatcher's comparison layer).
pub fn abs_diff(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "abs_diff: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).collect()
}

/// Average several equal-length vectors; panics on empty or ragged input.
pub fn average(vectors: &[Vec<f32>]) -> Vec<f32> {
    assert!(!vectors.is_empty(), "average of zero vectors");
    let dim = vectors[0].len();
    let mut out = vec![0.0f32; dim];
    for v in vectors {
        assert_eq!(v.len(), dim, "average: ragged input");
        axpy(1.0, v, &mut out);
    }
    scale(&mut out, 1.0 / vectors.len() as f32);
    out
}

/// L2-normalize in place; zero vectors are left untouched.
pub fn normalize(x: &mut [f32]) {
    let n = norm(x);
    if n > 0.0 {
        scale(x, 1.0 / n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        // length > 4 exercises the unrolled path + remainder
        let a: Vec<f32> = (0..11).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..11).map(|i| (i * 2) as f32).collect();
        let expect: f32 = (0..11).map(|i| (i * i * 2) as f32).sum();
        assert_eq!(dot(&a, &b), expect);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let probs = softmax(&[1000.0, 1000.0, 1000.0]);
        assert!((sum(&probs) - 1.0).abs() < 1e-6);
        for p in &probs {
            assert!((p - 1.0 / 3.0).abs() < 1e-6);
        }
        let big = softmax(&[1e30, 0.0]);
        assert!(big.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn softmax_preserves_order() {
        let probs = softmax(&[0.5, 2.0, -1.0]);
        assert!(probs[1] > probs[0] && probs[0] > probs[2]);
    }

    #[test]
    fn sigmoid_symmetry_and_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-6);
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
    }

    #[test]
    fn cosine_bounds_and_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn argmax_first_tie() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
    }

    #[test]
    fn argmax_treats_nan_as_worst() {
        // regression: `v > x[best]` is false whenever x[best] is NaN, so a
        // NaN-leading slice used to silently return 0
        assert_eq!(argmax(&[f32::NAN, 1.0, 3.0, 2.0]), 2);
        assert_eq!(argmax(&[f32::NAN, f32::NAN, -5.0]), 2);
        // all-NaN: no real maximum exists, first index is the fixed answer
        assert_eq!(argmax(&[f32::NAN, f32::NAN, f32::NAN]), 0);
        // NaN elsewhere never displaces a real maximum
        assert_eq!(argmax(&[1.0, f32::NAN, 0.5]), 0);
        assert_eq!(argmax(&[f32::NEG_INFINITY, f32::NAN]), 0);
    }

    #[test]
    fn softmax_all_neg_inf_is_uniform() {
        // regression: -inf - -inf = NaN left the buffer as unnormalized NaN
        let mut x = [f32::NEG_INFINITY; 4];
        softmax_inplace(&mut x);
        assert_eq!(x, [0.25; 4]);
        let probs = softmax(&[f32::NEG_INFINITY]);
        assert_eq!(probs, vec![1.0]);
        // NaN inputs must still propagate NaN — that is the diverged-model
        // signal automl::trial quarantines on
        let mut bad = [f32::NAN, f32::NEG_INFINITY];
        softmax_inplace(&mut bad);
        assert!(bad.iter().all(|v| v.is_nan()));
        let mut mixed = [1.0, f32::NAN];
        softmax_inplace(&mut mixed);
        assert!(mixed.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn fused_cosine_bit_matches_decomposed_form() {
        // the shared-accumulator-structure contract: one fused pass ==
        // norm/norm/dot decomposition, bit for bit, at lengths around the
        // WIDE_LANES boundary and at embedding length
        for &len in &[0usize, 1, 7, 31, 32, 33, 63, 64, 100, 768] {
            let mut rng = crate::Rng::new(len as u64 + 9);
            let a: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
            let decomposed = if norm(&a) == 0.0 || norm(&b) == 0.0 {
                0.0
            } else {
                (dot(&a, &b) / (norm(&a) * norm(&b))).clamp(-1.0, 1.0)
            };
            assert_eq!(cosine(&a, &b), decomposed, "len {len}");
            assert_eq!(
                cosine_with_norms(&a, &b, norm(&a), norm(&b)),
                cosine(&a, &b),
                "len {len}"
            );
        }
    }

    #[test]
    fn dispatched_kernels_bit_match_generic_builds() {
        for &len in &[0usize, 1, 5, 32, 37, 64, 255, 768, 1000] {
            let mut rng = crate::Rng::new(len as u64 + 77);
            let a: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
            let b: Vec<f32> = (0..len).map(|_| rng.normal()).collect();
            assert_eq!(dot(&a, &b), dot_generic(&a, &b), "dot len {len}");
            assert_eq!(cosine(&a, &b), cosine_generic(&a, &b), "cos len {len}");
        }
    }

    #[test]
    fn average_of_vectors() {
        let avg = average(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(avg, vec![2.0, 3.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn softplus_limits() {
        assert!((softplus(0.0) - 2.0f32.ln()).abs() < 1e-6);
        assert_eq!(softplus(100.0), 100.0);
        assert!(softplus(-100.0) >= 0.0);
    }

    #[test]
    fn sq_dist_and_abs_diff() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(abs_diff(&[1.0, -2.0], &[3.0, 2.0]), vec![2.0, 4.0]);
    }
}
