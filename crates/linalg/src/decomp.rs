//! Matrix decompositions and solvers.
//!
//! The stack needs exactly two solvers: a **Cholesky** factorization for the
//! ridge/GLM metalearners used by the H2O-style super learner, and a
//! general **LU with partial pivoting** as a fallback for small systems that
//! are not positive definite. Computations run in `f64` internally for
//! stability and narrow back to `f32` on the way out.

use crate::matrix::Matrix;

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower triangle stored dense, `n × n`.
    l: Vec<f64>,
    n: usize,
}

impl Cholesky {
    /// Factor `a` (symmetric positive definite). Returns `None` when a
    /// non-positive pivot is encountered.
    pub fn factor(a: &Matrix) -> Option<Cholesky> {
        let n = a.rows();
        assert_eq!(n, a.cols(), "Cholesky needs a square matrix");
        let mut l = vec![0.0f64; n * n];
        for j in 0..n {
            let mut diag = a[(j, j)] as f64;
            for k in 0..j {
                diag -= l[j * n + k] * l[j * n + k];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return None;
            }
            let dj = diag.sqrt();
            l[j * n + j] = dj;
            for i in j + 1..n {
                let mut v = a[(i, j)] as f64;
                for k in 0..j {
                    v -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = v / dj;
            }
        }
        Some(Cholesky { l, n })
    }

    /// Solve `A x = b` given the factorization.
    pub fn solve(&self, b: &[f32]) -> Vec<f32> {
        assert_eq!(b.len(), self.n, "Cholesky::solve dimension mismatch");
        let n = self.n;
        // forward: L y = b
        let mut y = vec![0.0f64; n];
        for i in 0..n {
            let mut v = b[i] as f64;
            for (k, &yk) in y.iter().enumerate().take(i) {
                v -= self.l[i * n + k] * yk;
            }
            y[i] = v / self.l[i * n + i];
        }
        // backward: Lᵀ x = y
        let mut x = vec![0.0f64; n];
        for i in (0..n).rev() {
            let mut v = y[i];
            for (k, &xk) in x.iter().enumerate().take(n).skip(i + 1) {
                v -= self.l[k * n + i] * xk;
            }
            x[i] = v / self.l[i * n + i];
        }
        x.into_iter().map(|v| v as f32).collect()
    }
}

/// Solve the ridge-regularized least squares problem
/// `(XᵀX + λI) w = Xᵀ y` for `w`.
///
/// This is the metalearner workhorse: `X` is the out-of-fold prediction
/// matrix of the base models, `y` the labels. A strictly positive `lambda`
/// makes the system positive definite, so Cholesky always succeeds; we still
/// retry with a boosted λ if numerics misbehave.
pub fn ridge_solve(x: &Matrix, y: &[f32], lambda: f32) -> Vec<f32> {
    assert_eq!(x.rows(), y.len(), "ridge_solve: rows/labels mismatch");
    // fused Gram product + transposed matvec: no Xᵀ is materialized
    let mut gram = x.matmul_transpose_a(x);
    let rhs = x.matvec_t(y);
    let mut lam = lambda.max(1e-6);
    for _ in 0..6 {
        let mut reg = gram.clone();
        for i in 0..reg.rows() {
            reg[(i, i)] += lam;
        }
        if let Some(chol) = Cholesky::factor(&reg) {
            let w = chol.solve(&rhs);
            if w.iter().all(|v| v.is_finite()) {
                return w;
            }
        }
        lam *= 10.0;
    }
    // Pathological input (e.g. all-zero features): fall back to zeros.
    gram.map_inplace(|_| 0.0);
    vec![0.0; x.cols()]
}

/// Solve a general square system `A x = b` via LU with partial pivoting.
/// Returns `None` for (numerically) singular systems.
pub fn lu_solve(a: &Matrix, b: &[f32]) -> Option<Vec<f32>> {
    let n = a.rows();
    assert_eq!(n, a.cols(), "lu_solve needs a square matrix");
    assert_eq!(n, b.len(), "lu_solve dimension mismatch");
    let mut m: Vec<f64> = a.as_slice().iter().map(|&v| v as f64).collect();
    let mut rhs: Vec<f64> = b.iter().map(|&v| v as f64).collect();
    for col in 0..n {
        // pivot
        let mut piv = col;
        let mut best = m[col * n + col].abs();
        for r in col + 1..n {
            let v = m[r * n + col].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        if best < 1e-12 {
            return None;
        }
        if piv != col {
            for k in 0..n {
                m.swap(col * n + k, piv * n + k);
            }
            rhs.swap(col, piv);
        }
        let d = m[col * n + col];
        for r in col + 1..n {
            let factor = m[r * n + col] / d;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                m[r * n + k] -= factor * m[col * n + k];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // back substitution
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut v = rhs[i];
        for k in i + 1..n {
            v -= m[i * n + k] * x[k];
        }
        x[i] = v / m[i * n + i];
    }
    Some(x.into_iter().map(|v| v as f32).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn spd(n: usize, seed: u64) -> Matrix {
        // A = B Bᵀ + n·I is symmetric positive definite.
        let mut rng = Rng::new(seed);
        let b = Matrix::randn(n, n, 1.0, &mut rng);
        let mut a = b.matmul(&b.transpose());
        for i in 0..n {
            a[(i, i)] += n as f32;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd(5, 1);
        let c = Cholesky::factor(&a).expect("spd must factor");
        // L Lᵀ == A
        let n = 5;
        for i in 0..n {
            for j in 0..n {
                let mut v = 0.0f64;
                for k in 0..n {
                    v += c.l[i * n + k] * c.l[j * n + k];
                }
                assert!(
                    (v as f32 - a[(i, j)]).abs() < 1e-3,
                    "entry ({i},{j}): {v} vs {}",
                    a[(i, j)]
                );
            }
        }
    }

    #[test]
    fn cholesky_solves() {
        let a = spd(6, 2);
        let x_true: Vec<f32> = (0..6).map(|i| (i as f32) - 2.5).collect();
        let b = a.matvec(&x_true);
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-3, "{xi} vs {ti}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        assert!(Cholesky::factor(&a).is_none());
    }

    #[test]
    fn ridge_recovers_weights() {
        let mut rng = Rng::new(3);
        let x = Matrix::randn(200, 4, 1.0, &mut rng);
        let w_true = [0.5f32, -1.0, 2.0, 0.0];
        let y: Vec<f32> = (0..200)
            .map(|i| crate::vector::dot(x.row(i), &w_true))
            .collect();
        let w = ridge_solve(&x, &y, 1e-4);
        for (wi, ti) in w.iter().zip(&w_true) {
            assert!((wi - ti).abs() < 0.05, "{wi} vs {ti}");
        }
    }

    #[test]
    fn ridge_handles_degenerate_input() {
        let x = Matrix::zeros(10, 3);
        let y = vec![1.0; 10];
        let w = ridge_solve(&x, &y, 1.0);
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn lu_solves_general_system() {
        let a = Matrix::from_vec(3, 3, vec![0.0, 2.0, 1.0, 1.0, -1.0, 0.0, 3.0, 0.0, -2.0]);
        let x_true = [1.0f32, 2.0, -1.0];
        let b = a.matvec(&x_true);
        let x = lu_solve(&a, &b).expect("nonsingular");
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-4);
        }
    }

    #[test]
    fn lu_detects_singular() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(lu_solve(&a, &[1.0, 2.0]).is_none());
    }
}
