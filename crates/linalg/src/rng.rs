//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the reproduction (dataset generators, weight
//! initialization, search strategies, bagging, …) draws from the [`Rng`]
//! defined here, seeded with an explicit `u64`. We implement the generators
//! ourselves — SplitMix64 for seeding and xoshiro256++ for the stream — so
//! that experiment outputs are stable across toolchain and dependency
//! upgrades, which matters when the deliverable is a set of regenerated paper
//! tables.

/// SplitMix64: a tiny, high-quality 64-bit mixer.
///
/// Used to expand a single user-facing seed into the 256-bit state of
/// [`Rng`], and anywhere a cheap stateless hash of an integer is needed
/// (e.g. deriving per-column seeds from a dataset seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a new mixer from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output and advance the state.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot mix of a value: `SplitMix64::mix(x)` is the first output of a
    /// mixer seeded with `x`. Handy for deriving sub-seeds.
    pub fn mix(seed: u64) -> u64 {
        SplitMix64::new(seed).next_u64()
    }
}

/// xoshiro256++ pseudo-random generator.
///
/// Fast, passes BigCrush, and — crucially for this project — fully specified
/// here so its stream never changes underneath the experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed via SplitMix64 expansion, as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derive an independent child generator. The `stream` tag keeps children
    /// of the same parent decorrelated.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let base = self.next_u64();
        Rng::new(base ^ SplitMix64::mix(stream.wrapping_add(0xA5A5_5A5A_DEAD_BEEF)))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` with 53 bits of entropy (computed in `f64`
    /// and narrowed, so the distribution near 1.0 stays uniform).
    pub fn f32(&mut self) -> f32 {
        self.f64() as f32
    }

    /// Uniform double in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`. `n` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below called with n = 0");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_u64(x, n);
            if lo >= n.wrapping_neg() % n {
                return hi as usize;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "Rng::range: empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.f32()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (the sine branch is discarded; clarity
    /// over squeezing out the second sample).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1 = self.f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.f64();
            let r = (-2.0 * u1.ln()).sqrt();
            return (r * (2.0 * std::f64::consts::PI * u2).cos()) as f32;
        }
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Uniformly pick a reference from a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Sample `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// Uses a partial Fisher–Yates over an index vector; fine for the sizes
    /// the stack deals with (feature/bag sampling).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Draw an index according to non-negative `weights` (need not be
    /// normalized). Falls back to uniform if all weights are zero.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return self.below(weights.len());
        }
        let mut target = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

/// Full 128-bit product of two u64s, returned as `(hi, lo)`.
fn mul_u64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference values from the canonical SplitMix64 implementation
        // seeded with 1234567.
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
    }

    #[test]
    fn rng_streams_differ_by_seed() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::new(7);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_covers_range_uniformly() {
        let mut rng = Rng::new(9);
        let mut counts = [0usize; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.below(10)] += 1;
        }
        for &c in &counts {
            // each bucket should hold ~10% ± 1%
            assert!((c as f64 - n as f64 / 10.0).abs() < n as f64 * 0.01);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal() as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(5);
        let mut xs: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(13);
        let sample = rng.sample_indices(50, 20);
        assert_eq!(sample.len(), 20);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
    }

    #[test]
    fn weighted_respects_weights() {
        let mut rng = Rng::new(17);
        let weights = [0.0, 3.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_all_zero_falls_back_to_uniform() {
        let mut rng = Rng::new(19);
        let weights = [0.0; 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.weighted(&weights)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "n = 0")]
    fn below_zero_panics() {
        Rng::new(0).below(0);
    }
}
