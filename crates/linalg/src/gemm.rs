//! Packed, cache-blocked GEMM microkernels — the one hot loop of the stack.
//!
//! Every embedder forward pass, attention score, DeepMatcher layer and
//! tree-booster feature block bottoms out in [`crate::Matrix::matmul`],
//! which bottoms out here. The design is a scaled-down BLIS:
//!
//! * **B is packed once** into column panels ("strips") of [`NR`]
//!   consecutive columns, stored k-major, so the inner kernel streams one
//!   contiguous buffer front to back. A strip is `k × NR × 4` bytes —
//!   L1-sized for the pipeline's common inner dims and a pure sequential
//!   stream even at the deepest one (k = 768 embeddings, 48 KiB).
//! * **A is packed per row block** into a k-major interleaved panel of
//!   [`MR`] rows (`MR × k × 4` ≤ 12 KiB), so the microkernel's second
//!   stream is also a single contiguous walk. The A panel stays hot in
//!   L1 while all of packed B streams past it once per row block.
//! * **Register tiling.** The microkernel computes an [`MR`]`×`[`NR`]
//!   output tile with `MR·NR` independent accumulators held in vector
//!   registers for the whole k loop; per k step it runs a handful of
//!   contiguous vector loads against `MR·NR` multiply-adds, where the
//!   naive kernel pays a load *and* a store per multiply-add.
//! * **Transposes are fused into packing.** `A·Bᵀ` packs B's strips
//!   straight out of the transposed operand's row-major storage, and
//!   `Aᵀ·B` packs its A panels from the transposed operand's column
//!   slices — so both fused variants run the *same* microkernel at the
//!   same throughput as the plain product, and no transposed matrix is
//!   ever materialized.
//! * **Ragged edges** (rows % `MR`, cols % `NR`, zero-sized dims) use the
//!   same kernels with runtime tile bounds — no zero padding, because
//!   padded lanes would feed `0·∞ = NaN` (or `-0.0`) into real sums.
//!
//! **The bit-identity contract.** Each output element is produced by a
//! *single* accumulator updated in strictly increasing-`k` order, with no
//! `mul_add` contraction — exactly the float-op sequence of the naive
//! triple loop. Packing moves values without arithmetic, and register
//! tiling only changes *which elements make progress together*, never the
//! order of additions within one element. Consequences, both load-bearing
//! for the rest of the stack:
//!
//! 1. every product here is **bit-identical to the naive reference**
//!    oracle (`tests/kernel_conformance.rs` enforces this), and
//! 2. row-tiled parallel execution over *any* tile boundaries is
//!    bit-identical to sequential execution, preserving the
//!    results-never-depend-on-thread-count contract of the `par` crate.

/// Rows per register tile of the microkernel (and per packed A panel).
pub const MR: usize = 4;
/// Columns per register tile of the microkernel (one packed B strip).
pub const NR: usize = 16;

/// B packed into k-major column strips of width ≤ [`NR`].
///
/// Strip `s` covers columns `[s·NR, min(n, s·NR + NR))`; inside a strip
/// the element for row `k`, local column `c` sits at `k·width + c`, so
/// the microkernel reads the strip front-to-back exactly once per row
/// block of A.
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedB {
    /// Pack the row-major `k × n` matrix `b` into column strips.
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedB {
        debug_assert_eq!(b.len(), k * n);
        let mut data = vec![0.0f32; k * n];
        let mut off = 0;
        let mut j0 = 0;
        while j0 < n {
            let w = (n - j0).min(NR);
            for kk in 0..k {
                let src = &b[kk * n + j0..kk * n + j0 + w];
                data[off + kk * w..off + kk * w + w].copy_from_slice(src);
            }
            off += k * w;
            j0 += w;
        }
        PackedB { k, n, data }
    }

    /// Pack the *transpose* of the row-major `n × k` matrix `bt` (so the
    /// logical B is `btᵀ`, `k × n`): strip column `c` is row `j0 + c` of
    /// `bt`, read along its contiguous k axis. This is how `A·Bᵀ` joins
    /// the blocked path without ever materializing `Bᵀ`.
    pub fn pack_transposed(bt: &[f32], n: usize, k: usize) -> PackedB {
        debug_assert_eq!(bt.len(), n * k);
        let mut data = vec![0.0f32; k * n];
        let mut off = 0;
        let mut j0 = 0;
        while j0 < n {
            let w = (n - j0).min(NR);
            for c in 0..w {
                let src = &bt[(j0 + c) * k..(j0 + c + 1) * k];
                for (kk, &v) in src.iter().enumerate() {
                    data[off + kk * w + c] = v;
                }
            }
            off += k * w;
            j0 += w;
        }
        PackedB { k, n, data }
    }

    /// Packed output width.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Shared inner dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Iterate `(first_col, width, strip_data)` over the column strips.
    fn strips(&self) -> impl Iterator<Item = (usize, usize, &[f32])> {
        let mut off = 0;
        let mut j0 = 0;
        std::iter::from_fn(move || {
            if j0 >= self.n {
                return None;
            }
            let w = (self.n - j0).min(NR);
            let strip = &self.data[off..off + self.k * w];
            let item = (j0, w, strip);
            off += self.k * w;
            j0 += w;
            Some(item)
        })
    }
}

/// The microkernel: one `mr × w` register tile over the full k loop.
///
/// `apack` is k-major interleaved (`apack[kk·mr + r]` = A row `r`,
/// column `kk` of the block), `strip` is k-major (`strip[kk·w + c]`).
/// Both streams advance one cache-friendly step per `kk`; all `mr·w`
/// accumulators live in `acc` for the whole loop, each advancing in
/// plain increasing-`k` order (no `mul_add`), which keeps the tile
/// bit-compatible with the naive oracle.
#[inline(always)]
fn microkernel(apack: &[f32], mr: usize, strip: &[f32], w: usize, acc: &mut [[f32; NR]; MR]) {
    const HALF: usize = NR / 2;
    if mr == MR && w == NR {
        // full tile: fixed bounds let the compiler keep acc in registers
        for (av, b) in apack.chunks_exact(MR).zip(strip.chunks_exact(NR)) {
            for r in 0..MR {
                let x = av[r];
                for c in 0..NR {
                    acc[r][c] += x * b[c];
                }
            }
        }
    } else if mr == MR && w == HALF {
        // half-width tile, fixed bounds: keeps narrow products (n ≤ 8,
        // e.g. tree-booster feature blocks) on a vectorized path instead
        // of the scalar runtime-bound edge kernel
        for (av, b) in apack.chunks_exact(MR).zip(strip.chunks_exact(HALF)) {
            for r in 0..MR {
                let x = av[r];
                for c in 0..HALF {
                    acc[r][c] += x * b[c];
                }
            }
        }
    } else {
        for (av, b) in apack.chunks_exact(mr).zip(strip.chunks_exact(w)) {
            for r in 0..mr {
                let x = av[r];
                for c in 0..w {
                    acc[r][c] += x * b[c];
                }
            }
        }
    }
}

/// Interleave rows `i0..i0+mr` of the row-major `a` (`k` columns) into a
/// k-major panel.
fn pack_a_block(a: &[f32], k: usize, i0: usize, mr: usize, apack: &mut [f32]) {
    for r in 0..mr {
        let row = &a[(i0 + r) * k..(i0 + r + 1) * k];
        for (kk, &v) in row.iter().enumerate() {
            apack[kk * mr + r] = v;
        }
    }
}

/// Interleave *columns* `j0..j0+mr` of the row-major `at` (`k × m`) into
/// a k-major panel — the A-side transpose fused into packing for `Aᵀ·B`.
fn pack_a_block_transposed(
    at: &[f32],
    m: usize,
    k: usize,
    j0: usize,
    mr: usize,
    apack: &mut [f32],
) {
    for kk in 0..k {
        let src = &at[kk * m + j0..kk * m + j0 + mr];
        apack[kk * mr..kk * mr + mr].copy_from_slice(src);
    }
}

/// Drive the microkernel over output rows `r0..r1` given a closure that
/// packs each A panel; shared by the plain and A-transposed products.
///
/// Dispatches once per call between two compilations of the *same* loop
/// nest: a baseline build and, when the CPU supports it, an AVX2 build
/// ([`gemm_driver_avx2`]). Wider registers change how many accumulators
/// advance per instruction, never the order of operations within one
/// accumulator, so both builds produce bit-identical output — the
/// dispatch cannot violate the bit-identity contract.
fn gemm_driver(
    k: usize,
    r0: usize,
    r1: usize,
    packed: &PackedB,
    pack_panel: impl FnMut(usize, usize, &mut [f32]),
) -> Vec<f32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just detected at runtime.
        return unsafe { gemm_driver_avx2(k, r0, r1, packed, pack_panel) };
    }
    gemm_driver_impl(k, r0, r1, packed, pack_panel)
}

/// The AVX2 compilation of [`gemm_driver_impl`]: `#[target_feature]`
/// plus the `#[inline(always)]` body lets LLVM re-vectorize the
/// microkernel's fixed-bound tile loops with 8-lane `vmulps`/`vaddps`
/// (double the baseline's 4-lane throughput) while executing exactly the
/// same IEEE operations per element.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_driver_avx2(
    k: usize,
    r0: usize,
    r1: usize,
    packed: &PackedB,
    pack_panel: impl FnMut(usize, usize, &mut [f32]),
) -> Vec<f32> {
    gemm_driver_impl(k, r0, r1, packed, pack_panel)
}

#[inline(always)]
fn gemm_driver_impl(
    k: usize,
    r0: usize,
    r1: usize,
    packed: &PackedB,
    mut pack_panel: impl FnMut(usize, usize, &mut [f32]),
) -> Vec<f32> {
    let n = packed.n;
    debug_assert_eq!(packed.k, k);
    let mut out = vec![0.0f32; (r1 - r0) * n];
    if k == 0 || n == 0 {
        return out;
    }
    let mut apack = vec![0.0f32; MR * k];
    let mut i = r0;
    while i < r1 {
        let mr = (r1 - i).min(MR);
        pack_panel(i, mr, &mut apack[..mr * k]);
        for (j0, w, strip) in packed.strips() {
            let mut acc = [[0.0f32; NR]; MR];
            microkernel(&apack[..mr * k], mr, strip, w, &mut acc);
            for (r, row_acc) in acc.iter().enumerate().take(mr) {
                let dst_start = (i + r - r0) * n + j0;
                out[dst_start..dst_start + w].copy_from_slice(&row_acc[..w]);
            }
        }
        i += mr;
    }
    out
}

/// Compute output rows `r0..r1` of `A · B` into a fresh row-major buffer
/// of shape `(r1 − r0) × n`, reading A rows from the row-major `a`
/// (`a_cols` columns wide) and B from its packed form.
///
/// This is the one kernel both the sequential and the row-tiled parallel
/// matmul paths call; its per-row results are independent of `(r0, r1)`,
/// which is what makes the parallel product bit-identical to the
/// sequential one. Pair it with [`PackedB::pack_transposed`] and it is
/// also the `A·Bᵀ` kernel.
pub fn gemm_rows(a: &[f32], a_cols: usize, r0: usize, r1: usize, packed: &PackedB) -> Vec<f32> {
    gemm_driver(a_cols, r0, r1, packed, |i, mr, apack| {
        pack_a_block(a, a_cols, i, mr, apack)
    })
}

/// Compute output rows `j0..j1` of `Aᵀ · B` where `at` is the row-major
/// `k × m` operand (so output row `j` is column `j` of `at` against all
/// of packed B). Same microkernel, A panels packed from column slices —
/// except in the tall-skinny regime (`n ≤ NR`), which takes the direct
/// rank-1 path of `gemm_ta_direct` instead.
pub fn gemm_ta_rows(at: &[f32], m: usize, j0: usize, j1: usize, packed: &PackedB) -> Vec<f32> {
    let k = packed.k;
    debug_assert_eq!(at.len(), k * m);
    if packed.n > 0 && packed.n <= NR && k > 0 {
        return gemm_ta_direct(at, m, j0, j1, packed);
    }
    gemm_driver(k, j0, j1, packed, |j, mr, apack| {
        pack_a_block_transposed(at, m, k, j, mr, apack)
    })
}

/// Output rows per cache block of the tall-skinny direct kernel: a block
/// of `TA_DIRECT_BLOCK × NR` accumulators is at most 16 KiB, so it stays
/// L1-resident across the whole k loop while both operand streams walk
/// contiguous rows exactly once.
const TA_DIRECT_BLOCK: usize = 256;

/// Tall-skinny `Aᵀ·B`: direct rank-1 updates, no panel packing.
///
/// The packed path is pathological here. When `n ≤ NR`, packed B is a
/// single strip (its layout is exactly row-major `k × n`) and each A
/// panel buys only `mr·n·k` flops — but packing that panel reads `at` in
/// `mr`-wide slices strided by `m` rows. At the tall-skinny shapes the
/// pipeline hits (2048×32×8 booster feature blocks: `m` = 2048 floats =
/// 8 KiB stride) every one of those reads maps to the *same* L1 set, so
/// the pack loop thrashes one cache way and the measured throughput
/// collapses to ~3 GFLOP/s against 30+ for the other GEMM variants.
///
/// The fix is to skip packing entirely and walk the product the other
/// way: for each `kk`, one contiguous run of `at` row `kk` rank-1-updates
/// an L1-resident output block against B row `kk` (held in registers).
/// Every stream is sequential; nothing is touched twice outside L1.
///
/// Each output element is still a single accumulator (its slot in `out`)
/// advanced in strictly increasing-`kk` order with no `mul_add`, so the
/// bit-identity contract holds: this path is bit-identical to the packed
/// path, the naive oracle, and itself under any `(j0, j1)` row split —
/// the parallel tiles of `Matrix::matmul_transpose_a` can mix both paths
/// freely.
fn gemm_ta_direct(at: &[f32], m: usize, j0: usize, j1: usize, packed: &PackedB) -> Vec<f32> {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: the avx2 feature was just detected at runtime.
        return unsafe { gemm_ta_direct_avx2(at, m, j0, j1, packed) };
    }
    gemm_ta_direct_impl(at, m, j0, j1, packed)
}

/// The AVX2 compilation of [`gemm_ta_direct_impl`] (same source, wider
/// registers, identical bits — as for [`gemm_driver_avx2`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_ta_direct_avx2(
    at: &[f32],
    m: usize,
    j0: usize,
    j1: usize,
    packed: &PackedB,
) -> Vec<f32> {
    gemm_ta_direct_impl(at, m, j0, j1, packed)
}

/// One kk step of the direct kernel over a whole output block: rank-1
/// update of `block` (rows of `n` accumulators) by `arow ⊗ brow`.
///
/// The row loop is unrolled 4× so the compiler keeps four output rows'
/// partial sums in flight at once — the single-row form serializes on one
/// load/update/store per row and measures ~5× slower on the tall-skinny
/// bench shape. Unrolling across *rows* never reorders the updates within
/// one output element, so the bit-identity contract is untouched.
#[inline(always)]
fn ta_rank1_update<const W: usize>(block: &mut [f32], arow: &[f32], brow: &[f32]) {
    debug_assert_eq!(brow.len(), W);
    let mut rows4 = block.chunks_exact_mut(4 * W);
    let mut xs4 = arow.chunks_exact(4);
    for (o4, x4) in (&mut rows4).zip(&mut xs4) {
        for r in 0..4 {
            let x = x4[r];
            for c in 0..W {
                o4[r * W + c] += x * brow[c];
            }
        }
    }
    for (o, &x) in rows4
        .into_remainder()
        .chunks_exact_mut(W)
        .zip(xs4.remainder())
    {
        for c in 0..W {
            o[c] += x * brow[c];
        }
    }
}

/// As [`ta_rank1_update`] but for a runtime strip width `n < NR/2`.
#[inline(always)]
fn ta_rank1_update_any(block: &mut [f32], arow: &[f32], brow: &[f32]) {
    let n = brow.len();
    for (o, &x) in block.chunks_exact_mut(n).zip(arow) {
        for (oc, &bc) in o.iter_mut().zip(brow) {
            *oc += x * bc;
        }
    }
}

#[inline(always)]
fn gemm_ta_direct_impl(at: &[f32], m: usize, j0: usize, j1: usize, packed: &PackedB) -> Vec<f32> {
    let (k, n) = (packed.k, packed.n);
    debug_assert!(n > 0 && n <= NR && k > 0);
    let cols = j1 - j0;
    let mut out = vec![0.0f32; cols * n];
    const HALF: usize = NR / 2;
    let mut jb = 0;
    while jb < cols {
        let jw = (cols - jb).min(TA_DIRECT_BLOCK);
        let block = &mut out[jb * n..(jb + jw) * n];
        for kk in 0..k {
            let arow = &at[kk * m + j0 + jb..kk * m + j0 + jb + jw];
            let brow = &packed.data[kk * n..(kk + 1) * n];
            // fixed-width instantiations for the strip widths the
            // microkernel also specializes, so B's row stays in vector
            // registers across the whole block
            if n == NR {
                ta_rank1_update::<NR>(block, arow, brow);
            } else if n == HALF {
                ta_rank1_update::<HALF>(block, arow, brow);
            } else {
                ta_rank1_update_any(block, arow, brow);
            }
        }
        jb += jw;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = crate::Rng::new(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for i in 0..rows {
            for j in 0..cols {
                out[j * rows + i] = src[i * cols + j];
            }
        }
        out
    }

    #[test]
    fn packed_gemm_bit_matches_naive_on_ragged_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (4, 8, 8),
            (5, 7, 9),
            (13, 17, 11),
            (3, 1, 23),
            (31, 2, 1),
            (9, 33, 16),
        ] {
            let a = fill(m * k, (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, (n * 13 + k) as u64);
            let packed = PackedB::pack(&b, k, n);
            let got = gemm_rows(&a, k, 0, m, &packed);
            assert_eq!(got, naive(&a, &b, m, k, n), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn gemm_rows_is_independent_of_row_range_splits() {
        let (m, k, n) = (11, 9, 13);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let packed = PackedB::pack(&b, k, n);
        let whole = gemm_rows(&a, k, 0, m, &packed);
        for split in 1..m {
            let mut stitched = gemm_rows(&a, k, 0, split, &packed);
            stitched.extend(gemm_rows(&a, k, split, m, &packed));
            assert_eq!(stitched, whole, "split at {split}");
        }
    }

    #[test]
    fn transposed_packings_bit_match_plain_packing() {
        let (m, k, n) = (7, 10, 13);
        let a = fill(m * k, 8);
        let b = fill(k * n, 9);
        let expect = naive(&a, &b, m, k, n);
        // A·Bᵀ route: pack B from its transposed storage
        let bt = transpose(&b, k, n); // n × k
        let packed_t = PackedB::pack_transposed(&bt, n, k);
        assert_eq!(gemm_rows(&a, k, 0, m, &packed_t), expect);
        // Aᵀ·B route: panels packed from A's transposed storage
        let at = transpose(&a, m, k); // k × m
        let packed = PackedB::pack(&b, k, n);
        assert_eq!(gemm_ta_rows(&at, m, 0, m, &packed), expect);
    }

    #[test]
    fn baseline_compilation_bit_matches_dispatched_kernel() {
        // on AVX2 hosts the public entry points always take the
        // `gemm_driver_avx2` branch, so drive the generic compilation
        // directly: both builds of the same loop nest must agree exactly
        for &(m, k, n) in &[(5, 7, 9), (13, 17, 11), (64, 33, 40)] {
            let a = fill(m * k, 3 * m as u64 + k as u64);
            let b = fill(k * n, 5 * n as u64 + k as u64);
            let packed = PackedB::pack(&b, k, n);
            let generic = gemm_driver_impl(k, 0, m, &packed, |i, mr, apack| {
                pack_a_block(&a, k, i, mr, apack)
            });
            assert_eq!(generic, gemm_rows(&a, k, 0, m, &packed), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn ta_direct_path_bit_matches_packed_path_and_oracle() {
        // n ≤ NR routes gemm_ta_rows through the rank-1 direct kernel;
        // drive the packed driver explicitly to prove both paths agree
        // bit for bit (and with the oracle) on tall-skinny shapes,
        // including k past TA_DIRECT_BLOCK and ragged block edges
        for &(m, k, n) in &[
            (2048, 32, 8),
            (2048, 32, 16),
            (511, 33, 7),
            (300, 300, 8),
            (1, 5, 3),
            (257, 2, 1),
        ] {
            let at = fill(k * m, (m * 7 + k) as u64); // k × m operand
            let b = fill(k * n, (n * 11 + k) as u64);
            let packed = PackedB::pack(&b, k, n);
            let direct = gemm_ta_rows(&at, m, 0, m, &packed);
            let via_driver = gemm_driver(k, 0, m, &packed, |j, mr, apack| {
                pack_a_block_transposed(&at, m, k, j, mr, apack)
            });
            assert_eq!(direct, via_driver, "direct vs packed at {m}x{k}x{n}");
            let a = transpose(&at, k, m); // m × k
            assert_eq!(direct, naive(&a, &b, m, k, n), "oracle at {m}x{k}x{n}");
        }
    }

    #[test]
    fn ta_direct_is_independent_of_row_range_splits() {
        let (m, k, n) = (517, 19, 8);
        let at = fill(k * m, 91);
        let b = fill(k * n, 92);
        let packed = PackedB::pack(&b, k, n);
        let whole = gemm_ta_rows(&at, m, 0, m, &packed);
        for &split in &[1, 7, 255, 256, 257, 400, 516] {
            let mut stitched = gemm_ta_rows(&at, m, 0, split, &packed);
            stitched.extend(gemm_ta_rows(&at, m, split, m, &packed));
            assert_eq!(stitched, whole, "split at {split}");
        }
    }

    #[test]
    fn empty_dims_yield_zero_or_empty_products() {
        let packed = PackedB::pack(&[], 0, 4);
        assert_eq!(gemm_rows(&[], 0, 0, 3, &packed), vec![0.0; 12]);
        let packed = PackedB::pack(&[], 5, 0);
        assert_eq!(gemm_rows(&fill(10, 1), 5, 0, 2, &packed), Vec::<f32>::new());
    }
}
