//! Dense row-major `f32` matrix.
//!
//! This is the single matrix type used across the stack: feature matrices in
//! `ml`, weight matrices in `nn`, embedding tables in `embed`. It is a thin
//! shape-checked wrapper over a `Vec<f32>`; all operations are safe and most
//! hot paths work on whole row slices so the optimizer can vectorize them.

use crate::gemm;
use crate::rng::Rng;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Fused multiply-add count (`rows · inner · cols`) above which
/// [`Matrix::matmul`] switches to the row-tiled parallel path. Below it a
/// scope's thread-spawn overhead (tens of microseconds) would not pay for
/// itself.
pub const PAR_MATMUL_FLOPS: usize = 1 << 21;

/// A dense matrix with `rows × cols` entries stored row-major.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major `Vec`. Panics if the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: {} values for a {rows}x{cols} matrix",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from a slice of rows. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build by calling `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn i.i.d. from `N(0, std²)`.
    pub fn randn(rows: usize, cols: usize, std: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.normal() * std).collect();
        Self { rows, cols, data }
    }

    /// Matrix with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let data = (0..rows * cols).map(|_| rng.uniform(lo, hi)).collect();
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of row `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        let start = i * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable view of row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let start = i * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Iterate over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy of column `j`.
    pub fn col(&self, j: usize) -> Vec<f32> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Transposed copy.
    ///
    /// Tiled so both sides stay cache-resident: within a `TB × TB` tile
    /// the destination is written in contiguous runs while the source
    /// reads stride by one row. The naive row-major walk instead scatters
    /// every write `rows × 4` bytes apart — at the pipeline's tall shapes
    /// (thousands of rows) those all map to a handful of L1 sets and the
    /// transpose costs more than the GEMM it feeds (measured 276 µs vs
    /// 42 µs tiled on 2048×32, 7× on 2048×768).
    pub fn transpose(&self) -> Matrix {
        const TB: usize = 32;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Matrix::zeros(cols, rows);
        let src = &self.data;
        let dst = &mut out.data;
        let mut i0 = 0;
        while i0 < rows {
            let ih = (rows - i0).min(TB);
            let mut j0 = 0;
            while j0 < cols {
                let jw = (cols - j0).min(TB);
                for dj in 0..jw {
                    let dst = &mut dst[(j0 + dj) * rows + i0..(j0 + dj) * rows + i0 + ih];
                    for (di, o) in dst.iter_mut().enumerate() {
                        *o = src[(i0 + di) * cols + j0 + dj];
                    }
                }
                j0 += jw;
            }
            i0 += ih;
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// `other` is packed once into L1-sized column panels and the product
    /// runs through the register-tiled microkernel in [`crate::gemm`].
    ///
    /// Above [`PAR_MATMUL_FLOPS`] fused multiply-adds the output rows are
    /// tiled across the `par` worker pool, every tile multiplying against
    /// the *same* shared packed B through the same kernel. Each output
    /// element is accumulated in a fixed `k` order regardless of tiling,
    /// so the parallel product is **bit-identical** to the sequential one
    /// for every thread count — and both are bit-identical to
    /// [`Matrix::matmul_reference`].
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let _t = obs::ledger::phase("gemm");
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let packed = gemm::PackedB::pack(&other.data, other.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        let workers = par::threads();
        if workers > 1 && flops >= PAR_MATMUL_FLOPS && self.rows >= 2 {
            // row tiles, a few per worker so stealing can balance them
            let tile = (self.rows / (4 * workers)).max(1);
            let n_tiles = self.rows.div_ceil(tile);
            let chunks = par::map_indexed(n_tiles, |t| {
                let r0 = t * tile;
                let r1 = (r0 + tile).min(self.rows);
                gemm::gemm_rows(&self.data, self.cols, r0, r1, &packed)
            });
            let mut data = Vec::with_capacity(self.rows * other.cols);
            for chunk in chunks {
                data.extend_from_slice(&chunk);
            }
            return Matrix {
                rows: self.rows,
                cols: other.cols,
                data,
            };
        }
        Matrix {
            rows: self.rows,
            cols: other.cols,
            data: gemm::gemm_rows(&self.data, self.cols, 0, self.rows, &packed),
        }
    }

    /// Fused product `self · otherᵀ` (`other` given as `n × k`, i.e. its
    /// rows are the columns being multiplied against).
    ///
    /// Used by attention scores (`Q·Kᵀ`) and the `g·Bᵀ` half of matmul
    /// backprop; streams both operands along their contiguous rows
    /// instead of materializing a transposed copy. Bit-identical to
    /// `self.matmul(&other.transpose())` by the fixed-`k`-order contract
    /// of [`crate::gemm`].
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        let _t = obs::ledger::phase("gemm");
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_transpose_b shape mismatch: {:?} x {:?}ᵀ",
            self.shape(),
            other.shape()
        );
        let k = self.cols;
        let n = other.rows;
        let packed = gemm::PackedB::pack_transposed(&other.data, n, k);
        let flops = self.rows * k * n;
        let workers = par::threads();
        if workers > 1 && flops >= PAR_MATMUL_FLOPS && self.rows >= 2 {
            let tile = (self.rows / (4 * workers)).max(1);
            let n_tiles = self.rows.div_ceil(tile);
            let chunks = par::map_indexed(n_tiles, |t| {
                let r0 = t * tile;
                let r1 = (r0 + tile).min(self.rows);
                gemm::gemm_rows(&self.data, k, r0, r1, &packed)
            });
            let mut data = Vec::with_capacity(self.rows * n);
            for chunk in chunks {
                data.extend_from_slice(&chunk);
            }
            return Matrix {
                rows: self.rows,
                cols: n,
                data,
            };
        }
        Matrix {
            rows: self.rows,
            cols: n,
            data: gemm::gemm_rows(&self.data, k, 0, self.rows, &packed),
        }
    }

    /// Fused product `selfᵀ · other` (`self` given as `k × m`; output is
    /// `m × n`).
    ///
    /// Used by Gram products (`XᵀX` in the ridge metalearner) and the
    /// `Aᵀ·g` half of matmul backprop. Runs as rank-1 updates along
    /// contiguous rows of both operands. Bit-identical to
    /// `self.transpose().matmul(&other)` by the fixed-`k`-order contract
    /// of [`crate::gemm`].
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        let _t = obs::ledger::phase("gemm");
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_transpose_a shape mismatch: {:?}ᵀ x {:?}",
            self.shape(),
            other.shape()
        );
        let k = self.rows;
        let m = self.cols;
        let n = other.cols;
        let packed = gemm::PackedB::pack(&other.data, k, n);
        let flops = m * k * n;
        let workers = par::threads();
        if workers > 1 && flops >= PAR_MATMUL_FLOPS && m >= 2 {
            let tile = (m / (4 * workers)).max(1);
            let n_tiles = m.div_ceil(tile);
            let chunks = par::map_indexed(n_tiles, |t| {
                let j0 = t * tile;
                let j1 = (j0 + tile).min(m);
                gemm::gemm_ta_rows(&self.data, m, j0, j1, &packed)
            });
            let mut data = Vec::with_capacity(m * n);
            for chunk in chunks {
                data.extend_from_slice(&chunk);
            }
            return Matrix {
                rows: m,
                cols: n,
                data,
            };
        }
        Matrix {
            rows: m,
            cols: n,
            data: gemm::gemm_ta_rows(&self.data, m, 0, m, &packed),
        }
    }

    /// Naive triple-loop product — the conformance oracle, and (modulo a
    /// since-removed `a == 0.0` skip that silently dropped `0·∞` / `0·NaN`
    /// contributions) the pre-microkernel implementation the perf harness
    /// benchmarks against.
    ///
    /// Each output element is a single accumulator summed in increasing
    /// `k` order, which is exactly the order every kernel in
    /// [`crate::gemm`] commits to — so `matmul`, `matmul_transpose_b` and
    /// `matmul_transpose_a` must (and do) reproduce this result *bit for
    /// bit*.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul_reference shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a) in a_row.iter().enumerate() {
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    ///
    /// One row dot per output element, through the wide-lane dot kernel of
    /// `crate::vector` — dispatched **once per call** (not once per row)
    /// between the baseline body and the hand-vectorized AVX2 form of the
    /// same lane structure (see `vector`'s module docs). Both builds are
    /// bit-identical, and each element equals `vector::dot(row, v)`
    /// exactly.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just detected at runtime.
            return unsafe { matvec_avx2(self, v) };
        }
        matvec_body(self, v)
    }

    /// Fused transposed matrix–vector product `selfᵀ · v` (`self` is
    /// `k × m`, `v` has length `k`, output length `m`).
    ///
    /// Runs as `k` scaled-row accumulations over contiguous rows, so no
    /// transposed copy is materialized; used for `Xᵀy` right-hand sides
    /// in the ridge metalearner. Same once-per-call two-build AVX2
    /// dispatch as [`Matrix::matvec`]; the accumulation is elementwise
    /// (`out[j] += x · row[j]`, rows in increasing order), so vector
    /// width cannot change a single bit.
    pub fn matvec_t(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.rows, v.len(), "matvec_t shape mismatch");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 feature was just detected at runtime.
            return unsafe { matvec_t_avx2(self, v) };
        }
        matvec_t_body(self, v)
    }

    /// The baseline (no `target_feature`) compilation of [`Matrix::matvec`]
    /// — exported so the kernel conformance suite can prove the SIMD
    /// dispatch is bit-transparent. Not a fast path; call `matvec`.
    pub fn matvec_generic(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        matvec_body(self, v)
    }

    /// The baseline compilation of [`Matrix::matvec_t`] (see
    /// [`Matrix::matvec_generic`]).
    pub fn matvec_t_generic(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.rows, v.len(), "matvec_t shape mismatch");
        matvec_t_body(self, v)
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise sum; panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise product (Hadamard).
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Elementwise combine.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "elementwise shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Scale every entry by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|x| x * s)
    }

    /// `self += alpha * other`, in place.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean over each column (length `cols`).
    pub fn col_means(&self) -> Vec<f32> {
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut means = vec![0.0f32; self.cols];
        for row in self.rows_iter() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for m in &mut means {
            *m *= inv;
        }
        means
    }

    /// Population standard deviation over each column.
    pub fn col_stds(&self) -> Vec<f32> {
        let means = self.col_means();
        if self.rows == 0 {
            return vec![0.0; self.cols];
        }
        let mut vars = vec![0.0f32; self.cols];
        for row in self.rows_iter() {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        let inv = 1.0 / self.rows as f32;
        vars.iter().map(|v| (v * inv).sqrt()).collect()
    }

    /// New matrix containing the selected rows, in the given order.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: indices.len(),
            cols: self.cols,
            data,
        }
    }

    /// New matrix containing the selected columns, in the given order.
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(self.rows, indices.len());
        for i in 0..self.rows {
            let row = self.row(i);
            let dst = out.row_mut(i);
            for (d, &j) in dst.iter_mut().zip(indices) {
                *d = row[j];
            }
        }
        out
    }

    /// Stack `self` on top of `other` (must share `cols`).
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Concatenate columns of `self` and `other` (must share `rows`).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hstack row mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for i in 0..self.rows {
            data.extend_from_slice(self.row(i));
            data.extend_from_slice(other.row(i));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// The one matvec loop both builds compile: a wide-lane row dot per
/// output element (bit-identical to `vector::dot(row, v)`).
#[inline(always)]
fn matvec_body(m: &Matrix, v: &[f32]) -> Vec<f32> {
    m.rows_iter()
        .map(|row| crate::vector::dot_body(row, v))
        .collect()
}

/// The AVX2 build of [`matvec_body`]: same per-row dot, but through
/// `vector::avx::dot_wide` — the hand-vectorized form of the identical
/// lane structure (see `vector`'s module docs for why the recompiled
/// scalar body is not enough here).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matvec_avx2(m: &Matrix, v: &[f32]) -> Vec<f32> {
    // SAFETY: AVX2 was detected by the dispatching caller, and every row
    // of `m` has exactly `v.len()` elements (asserted by the caller).
    m.rows_iter()
        .map(|row| crate::vector::avx::dot_wide(row, v))
        .collect()
}

/// The one transposed-matvec loop both builds compile: rank-1 row
/// accumulations in increasing row order.
#[inline(always)]
fn matvec_t_body(m: &Matrix, v: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; m.cols];
    for (row, &x) in m.rows_iter().zip(v) {
        for (o, &r) in out.iter_mut().zip(row) {
            *o += x * r;
        }
    }
    out
}

/// The AVX2 compilation of [`matvec_t_body`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matvec_t_avx2(m: &Matrix, v: &[f32]) -> Vec<f32> {
    matvec_t_body(m, v)
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for i in 0..show {
            write!(f, "  [")?;
            let row = self.row(i);
            let cols = row.len().min(8);
            for (j, v) in row.iter().take(cols).enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if row.len() > cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_checks_len() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(1);
        let a = Matrix::randn(4, 4, 1.0, &mut rng);
        let i = Matrix::eye(4);
        let left = i.matmul(&a);
        let right = a.matmul(&i);
        for (x, y) in left.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
        for (x, y) in right.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(2);
        let a = Matrix::randn(3, 5, 1.0, &mut rng);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::new(3);
        let a = Matrix::randn(4, 6, 1.0, &mut rng);
        let v: Vec<f32> = (0..6).map(|i| i as f32).collect();
        let as_mat = Matrix::from_vec(6, 1, v.clone());
        let via_matmul = a.matmul(&as_mat);
        let via_matvec = a.matvec(&v);
        for (x, y) in via_matmul.as_slice().iter().zip(&via_matvec) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        assert_eq!(a.add(&b).as_slice(), &[6.0, 8.0, 10.0, 12.0]);
        assert_eq!(b.sub(&a).as_slice(), &[4.0, 4.0, 4.0, 4.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[5.0, 12.0, 21.0, 32.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::full(2, 2, 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 1.5, 1.5, 1.5]);
    }

    #[test]
    fn column_stats() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 10.0]]);
        assert_eq!(m.col_means(), vec![2.0, 10.0]);
        let stds = m.col_stds();
        assert!((stds[0] - 1.0).abs() < 1e-6);
        assert!(stds[1].abs() < 1e-6);
    }

    #[test]
    fn row_and_col_selection() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ]);
        let r = m.select_rows(&[2, 0]);
        assert_eq!(r.row(0), &[7.0, 8.0, 9.0]);
        assert_eq!(r.row(1), &[1.0, 2.0, 3.0]);
        let c = m.select_cols(&[1]);
        assert_eq!(c.shape(), (3, 1));
        assert_eq!(c.as_slice(), &[2.0, 5.0, 8.0]);
    }

    #[test]
    fn stacking() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b);
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn from_fn_layout() {
        let m = Matrix::from_fn(2, 3, |i, j| (i * 10 + j) as f32);
        assert_eq!(m.as_slice(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_sequential() {
        // big enough to clear PAR_MATMUL_FLOPS (192·160·192 ≈ 5.9M fma)
        let mut rng = Rng::new(42);
        let a = Matrix::randn(192, 160, 1.0, &mut rng);
        let b = Matrix::randn(160, 192, 1.0, &mut rng);
        assert!(a.rows() * a.cols() * b.cols() >= PAR_MATMUL_FLOPS);
        let seq = a.matmul_reference(&b);
        let auto = a.matmul(&b); // parallel when the machine has >1 thread
        assert_eq!(seq.as_slice(), auto.as_slice(), "exact bit equality");
    }

    #[test]
    fn parallel_matmul_handles_ragged_tiles() {
        // a row count that does not divide evenly into tiles
        let mut rng = Rng::new(43);
        let a = Matrix::randn(131, 140, 1.0, &mut rng);
        let b = Matrix::randn(140, 131, 1.0, &mut rng);
        let seq = a.matmul_reference(&b);
        assert_eq!(seq.as_slice(), a.matmul(&b).as_slice());
    }

    #[test]
    fn blocked_matmul_bit_matches_reference() {
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 9), (4, 8, 8), (17, 13, 19), (2, 64, 3)] {
            let mut rng = Rng::new((m * 100 + k * 10 + n) as u64);
            let a = Matrix::randn(m, k, 1.0, &mut rng);
            let b = Matrix::randn(k, n, 1.0, &mut rng);
            assert_eq!(
                a.matmul(&b).as_slice(),
                a.matmul_reference(&b).as_slice(),
                "{m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn fused_transpose_b_matches_materialized() {
        let mut rng = Rng::new(44);
        let a = Matrix::randn(9, 14, 1.0, &mut rng);
        let b = Matrix::randn(6, 14, 1.0, &mut rng); // rows are columns of Bᵀ
        let fused = a.matmul_transpose_b(&b);
        let materialized = a.matmul(&b.transpose());
        assert_eq!(fused.shape(), (9, 6));
        assert_eq!(fused.as_slice(), materialized.as_slice(), "exact bits");
    }

    #[test]
    fn fused_transpose_a_matches_materialized() {
        let mut rng = Rng::new(45);
        let a = Matrix::randn(12, 7, 1.0, &mut rng); // k×m
        let b = Matrix::randn(12, 5, 1.0, &mut rng); // k×n
        let fused = a.matmul_transpose_a(&b);
        let materialized = a.transpose().matmul(&b);
        assert_eq!(fused.shape(), (7, 5));
        assert_eq!(fused.as_slice(), materialized.as_slice(), "exact bits");
    }

    #[test]
    fn matvec_t_matches_transposed_matvec() {
        let mut rng = Rng::new(46);
        let a = Matrix::randn(8, 5, 1.0, &mut rng);
        let v: Vec<f32> = (0..8).map(|i| i as f32 * 0.3 - 1.0).collect();
        let fused = a.matvec_t(&v);
        let materialized = a.transpose().matvec(&v);
        for (x, y) in fused.iter().zip(&materialized) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_propagates_non_finite_values() {
        // regression: the old kernel skipped a == 0.0 terms, so 0·∞ and
        // 0·NaN were silently dropped and a non-finite matrix could
        // produce a finite (wrong) product
        let a = Matrix::from_vec(1, 2, vec![0.0, 1.0]);
        let b = Matrix::from_vec(2, 1, vec![f32::INFINITY, 2.0]);
        let c = a.matmul(&b);
        assert!(c[(0, 0)].is_nan(), "0·∞ must contribute NaN, got {c:?}");
        let b = Matrix::from_vec(2, 1, vec![f32::NAN, 2.0]);
        assert!(a.matmul(&b)[(0, 0)].is_nan());
        assert!(
            a.matmul_transpose_b(&Matrix::from_vec(1, 2, vec![f32::NAN, 0.5]))[(0, 0)].is_nan()
        );
        let ka = Matrix::from_vec(2, 1, vec![0.0, 1.0]);
        let kb = Matrix::from_vec(2, 1, vec![f32::INFINITY, 1.0]);
        assert!(ka.matmul_transpose_a(&kb)[(0, 0)].is_nan());
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = Matrix::zeros(0, 4);
        assert!(m.is_empty());
        assert_eq!(m.col_means(), vec![0.0; 4]);
        assert!(m.all_finite());
    }
}
