//! # linalg — dense numeric substrate
//!
//! Small, dependency-free dense linear algebra used by every layer of the
//! `automl-em` stack: the classical-ML model zoo, the autodiff engine, the
//! embedders and the AutoML search infrastructure.
//!
//! Design goals:
//!
//! * **`f32` row-major storage** — everything downstream (embeddings,
//!   gradients, feature matrices) is `f32`; row-major matches the access
//!   pattern of per-record feature rows.
//! * **No `unsafe`** — bounds checks are hoisted by iterating over row
//!   slices; hot loops use `chunks_exact` so LLVM can vectorize.
//! * **Explicit determinism** — the [`rng`] module provides seedable,
//!   version-stable generators (SplitMix64 / xoshiro256++) so that every
//!   experiment in the reproduction is bit-reproducible regardless of any
//!   external crate's evolution.
//!
//! The API favours free functions over methods where an operation reads more
//! naturally on slices (see [`vector`]), and a concrete [`Matrix`] type where
//! shape bookkeeping matters.

#![warn(missing_docs)]

pub mod decomp;
pub mod gemm;
pub mod matrix;
pub mod rng;
pub mod stats;
pub mod vector;

pub use matrix::Matrix;
pub use rng::{Rng, SplitMix64};
