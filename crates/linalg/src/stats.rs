//! Descriptive statistics and distribution helpers.
//!
//! Shared by the dataset generators (checking class-balance targets), the
//! AutoML surrogate model (expected improvement needs the normal CDF/PDF) and
//! the experiment report code (means, quantiles over F1 scores).
//!
//! Also home to the workspace's NaN-safe comparators. A diverging trial can
//! legitimately produce NaN scores, so nothing in the stack is allowed to
//! `partial_cmp().expect(...)` on a score: sorts use [`nan_last_cmp`] /
//! [`nan_worst_cmp`] (and their `f32` twins), which give NaN a fixed,
//! deterministic position instead of panicking.

use std::cmp::Ordering;

/// Total order for ascending sort keys where **NaN sorts last** (treated
/// as larger than every finite value and +inf). Unlike [`f64::total_cmp`],
/// negative NaN is *also* last, so the position of a NaN never depends on
/// its sign bit.
pub fn nan_last_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// `f32` twin of [`nan_last_cmp`].
pub fn nan_last_cmp_f32(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

/// Total order for *scores* where **NaN is the worst value** (smaller than
/// everything, even -inf). Use with `max_by` to pick a best score, or as
/// `|a, b| nan_worst_cmp(b, a)` for a descending best-first sort — in both
/// cases NaN candidates deterministically lose.
pub fn nan_worst_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// `f32` twin of [`nan_worst_cmp`].
pub fn nan_worst_cmp_f32(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for fewer than two values.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`); panics on empty input.
/// NaN inputs sort last (see [`nan_last_cmp`]) instead of panicking, so
/// they only influence the upper quantiles.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile q out of range: {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| nan_last_cmp(*a, *b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    #[allow(clippy::float_cmp)] // lo/hi come from floor/ceil of the same value
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient; 0 when either side is constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Standard normal probability density function.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution function.
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (|error| < 1.5e-7), plenty for expected-improvement acquisition.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Expected improvement of a Gaussian posterior `N(mu, sigma²)` over the
/// incumbent best value `best`, for a **maximization** problem.
pub fn expected_improvement(mu: f64, sigma: f64, best: f64) -> f64 {
    if sigma <= 0.0 {
        return (mu - best).max(0.0);
    }
    let z = (mu - best) / sigma;
    (mu - best) * normal_cdf(z) + sigma * normal_pdf(z)
}

/// Min-max normalize into `[0, 1]`; constant slices map to all-zeros.
pub fn min_max_normalize(xs: &mut [f64]) {
    if xs.is_empty() {
        return;
    }
    let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < f64::EPSILON {
        xs.iter_mut().for_each(|x| *x = 0.0);
        return;
    }
    let inv = 1.0 / (hi - lo);
    for x in xs {
        *x = (*x - lo) * inv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_endpoints_and_median() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 3.0);
        assert_eq!(median(&xs), 2.0);
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0; 4]), 0.0);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn erf_symmetry() {
        for x in [0.1, 0.5, 1.0, 2.0] {
            assert!((erf(x) + erf(-x)).abs() < 1e-12);
        }
        assert!((erf(1.0) - 0.8427007).abs() < 1e-5);
    }

    #[test]
    fn ei_monotone_in_mu() {
        let a = expected_improvement(0.5, 0.1, 0.6);
        let b = expected_improvement(0.7, 0.1, 0.6);
        assert!(b > a);
        // zero variance: EI is the plain improvement
        assert!((expected_improvement(0.7, 0.0, 0.6) - 0.1).abs() < 1e-12);
        assert_eq!(expected_improvement(0.5, 0.0, 0.6), 0.0);
    }

    #[test]
    fn nan_comparators_are_total_and_deterministic() {
        let mut xs = [2.0, f64::NAN, -1.0, f64::INFINITY, f64::NEG_INFINITY];
        xs.sort_by(|a, b| nan_last_cmp(*a, *b));
        assert_eq!(xs[0], f64::NEG_INFINITY);
        assert!(xs[4].is_nan());

        // nan_worst: NaN loses a max_by against anything, even -inf
        let best = [f64::NAN, f64::NEG_INFINITY, 3.0, f64::NAN]
            .into_iter()
            .max_by(|a, b| nan_worst_cmp(*a, *b))
            .unwrap();
        assert_eq!(best, 3.0);
        // all-NaN input still yields a value, deterministically
        assert!([f64::NAN, f64::NAN]
            .into_iter()
            .max_by(|a, b| nan_worst_cmp(*a, *b))
            .unwrap()
            .is_nan());

        // negative NaN sorts the same as positive NaN
        let neg_nan = f64::from_bits(f64::NAN.to_bits() | (1 << 63));
        assert_eq!(nan_last_cmp(neg_nan, 0.0), std::cmp::Ordering::Greater);
        assert_eq!(nan_worst_cmp(neg_nan, 0.0), std::cmp::Ordering::Less);
        assert_eq!(nan_last_cmp_f32(f32::NAN, 1.0), std::cmp::Ordering::Greater);
        assert_eq!(nan_worst_cmp_f32(f32::NAN, 1.0), std::cmp::Ordering::Less);
    }

    #[test]
    fn quantile_tolerates_nan() {
        // NaN sorts last, so the low quantiles stay finite
        let xs = [1.0, f64::NAN, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(median(&[1.0, 5.0, f64::NAN]), 5.0);
    }

    #[test]
    fn min_max_normalize_range() {
        let mut xs = vec![5.0, 10.0, 7.5];
        min_max_normalize(&mut xs);
        assert_eq!(xs, vec![0.0, 1.0, 0.5]);
        let mut constant = vec![3.0, 3.0];
        min_max_normalize(&mut constant);
        assert_eq!(constant, vec![0.0, 0.0]);
    }
}
