//! The full EM workflow from **two raw entity tables**: blocking →
//! candidate pairs → (simulated) labeling → adapter + AutoML matching.
//! This is the production shape the Magellan benchmark datasets were built
//! with; the paper starts from the already-blocked candidate sets.
//!
//! ```text
//! cargo run --release --example blocking_workflow
//! ```

use automl::sklearn_like::AutoSklearnStyle;
use em_core::{run_pipeline, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::generators::{Domain, Restaurant};
use em_data::noise::{corrupt_entity, NoiseConfig};
use em_data::{token_blocking, BlockerConfig, CandidatePair, DatasetKind, EmDataset, RecordPair};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use linalg::Rng;

fn main() {
    let mut rng = Rng::new(21);
    let domain = Restaurant;
    let schema = domain.schema();

    // --- two source tables with a known duplicate structure -------------
    let n = 250;
    let noise = NoiseConfig::from_level(0.25);
    let mut left = Vec::new();
    let mut right = Vec::new();
    let mut truth = Vec::new();
    for i in 0..n {
        let base = domain.generate(&mut rng);
        // ~60% of left records have a (corrupted) duplicate on the right
        if rng.chance(0.6) {
            right.push(corrupt_entity(&base, &schema, &noise, &[], &mut rng));
            truth.push(CandidatePair {
                left: i,
                right: right.len() - 1,
            });
        } else {
            right.push(domain.generate(&mut rng));
        }
        left.push(base);
    }

    // --- blocking ---------------------------------------------------------
    let blocking = token_blocking(&left, &right, &schema, &BlockerConfig::default());
    println!(
        "blocking: {} candidates out of a {}-pair cross product \
         (reduction {:.1}%, recall of true duplicates {:.1}%)",
        blocking.candidates.len(),
        blocking.cross_product,
        blocking.reduction_ratio() * 100.0,
        blocking.recall(&truth) * 100.0
    );

    // --- label the candidates (the benchmark datasets come pre-labeled;
    //     here the generator knows the truth) ------------------------------
    let truth_set: std::collections::HashSet<&CandidatePair> = truth.iter().collect();
    let pairs: Vec<RecordPair> = blocking
        .candidates
        .iter()
        .map(|c| {
            RecordPair::new(
                left[c.left].clone(),
                right[c.right].clone(),
                truth_set.contains(c),
            )
        })
        .collect();
    let dataset = EmDataset::with_split(
        "blocked-restaurants",
        DatasetKind::Structured,
        schema,
        pairs,
        &mut rng,
    );
    println!(
        "labeled candidate set: {} pairs, {:.1}% matches",
        dataset.len(),
        dataset.match_ratio() * 100.0
    );

    // --- the paper's pipeline on the blocked set ---------------------------
    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(120)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    println!("pretraining the Albert-style embedder…");
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            corpus_sentences: 900,
            steps: 400,
            seed: 21,
            ..PretrainConfig::default()
        },
    );
    let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);
    let mut system = AutoSklearnStyle::new(21);
    let result = run_pipeline(&mut system, &adapter, &dataset, PipelineConfig::default())
        .expect("pipeline run failed");
    println!(
        "adapter + AutoSklearn on the blocked candidates: test F1 {:.2}",
        result.test_f1
    );
}
