//! Quickstart: the paper's pipeline in ~40 lines.
//!
//! 1. Generate a Magellan-style EM dataset (BeerAdvo-RateBeer profile).
//! 2. Pretrain a (small) Albert-style embedder — the stand-in for loading
//!    a pretrained checkpoint.
//! 3. Wrap it in an EM adapter (hybrid tokenizer + average combiner).
//! 4. Run an AutoML system on the adapted features under a 1-hour budget.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use automl::sklearn_like::AutoSklearnStyle;
use em_core::{run_pipeline, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::MagellanDataset;
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};

fn main() {
    // 1. a benchmark dataset (450 labeled record pairs, 60/20/20 split)
    let dataset = MagellanDataset::SBR.profile().generate(42);
    println!(
        "dataset {}: {} pairs, {:.1}% matches",
        dataset.name(),
        dataset.len(),
        dataset.match_ratio() * 100.0
    );

    // 2. a pretrained transformer embedder (fast settings for the demo)
    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(100)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    println!("pretraining the Albert-style embedder…");
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            corpus_sentences: 800,
            steps: 250,
            seed: 42,
            ..PretrainConfig::default()
        },
    );

    // 3. the EM adapter: hybrid tokenizer → frozen embedder → average
    let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);

    // 4. AutoML under a budget
    let mut system = AutoSklearnStyle::new(42);
    let result = run_pipeline(
        &mut system,
        &adapter,
        &dataset,
        PipelineConfig {
            budget_hours: 1.0,
            ..PipelineConfig::default()
        },
    )
    .expect("pipeline run failed");

    println!(
        "test F1 {:.2} (validation {:.2}) — {} models evaluated in {:.2} paper-hours",
        result.test_f1, result.val_f1, result.models_evaluated, result.hours_used
    );
    let (hits, misses) = adapter.cache_stats();
    println!("embedding cache: {hits} hits / {misses} misses");
}
