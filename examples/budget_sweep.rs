//! Budget sweep (the Table 5 axis): how test F1 and models-evaluated grow
//! with the training budget, for all three paper systems plus the
//! successive-halving extension, on one dataset.
//!
//! ```text
//! cargo run --release --example budget_sweep
//! ```

use automl::halving::SuccessiveHalving;
use automl::AutoMlSystem;
use bench::experiments::{make_system, SYSTEM_NAMES};
use em_core::{run_encoded, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::{MagellanDataset, Split};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};

fn main() {
    let seed = 17;
    let dataset = MagellanDataset::SIA.profile().generate(seed);
    println!(
        "dataset {}: {} pairs ({:.1}% matches)",
        dataset.name(),
        dataset.len(),
        dataset.match_ratio() * 100.0
    );

    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(150)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    println!("pretraining the Albert-style embedder…");
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            seed,
            ..PretrainConfig::default()
        },
    );
    let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);
    let train = adapter.encode_split(&dataset, Split::Train);
    let valid = adapter.encode_split(&dataset, Split::Validation);
    let test = adapter.encode_split(&dataset, Split::Test);

    println!(
        "\n{:>18} {:>8} {:>8} {:>8} {:>8}",
        "system", "0.5h", "1h", "3h", "6h"
    );
    let budgets = [0.5f64, 1.0, 3.0, 6.0];
    for (idx, name) in SYSTEM_NAMES.iter().enumerate() {
        let mut cells = Vec::new();
        for &hours in &budgets {
            let mut sys = make_system(idx, seed);
            let cfg = PipelineConfig {
                budget_hours: hours,
                seed,
                ..PipelineConfig::default()
            };
            let r = run_encoded(sys.as_mut(), &train, &valid, &test, cfg, dataset.name())
                .expect("encoded run failed");
            cells.push(format!("{:>8.2}", r.test_f1));
        }
        println!("{name:>18} {}", cells.join(" "));
    }
    // the successive-halving extension under the same budgets
    let mut cells = Vec::new();
    for &hours in &budgets {
        let mut sys = SuccessiveHalving::new(seed);
        let cfg = PipelineConfig {
            budget_hours: hours,
            seed,
            ..PipelineConfig::default()
        };
        let r = run_encoded(&mut sys, &train, &valid, &test, cfg, dataset.name())
            .expect("encoded run failed");
        cells.push(format!("{:>8.2}", r.test_f1));
    }
    println!(
        "{:>18} {}",
        SuccessiveHalving::new(0).name(),
        cells.join(" ")
    );
    println!("\n(F1 should be non-decreasing left to right, within noise)");
}
