//! Product matching scenario (the Amazon-Google workload the paper's
//! introduction motivates): compare the adapter's tokenizer modes and all
//! three AutoML systems on one dataset, plus the DeepMatcher reference.
//!
//! ```text
//! cargo run --release --example product_matching
//! ```

use bench::experiments::{adapter_run, make_system, SYSTEM_NAMES};
use deepmatcher::{train_deepmatcher, TrainConfig};
use em_core::{Combiner, TokenizerMode};
use em_data::{MagellanDataset, Split};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};

fn main() {
    let seed = 7;
    let dataset = MagellanDataset::SAG.profile().generate_scaled(seed, 0.12);
    println!(
        "Amazon-Google style dataset: {} pairs ({:.1}% matches)\n",
        dataset.len(),
        dataset.match_ratio() * 100.0
    );

    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(150)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    println!("pretraining the Albert-style embedder…");
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            seed,
            ..PretrainConfig::default()
        },
    );

    // tokenizer comparison with the AutoSklearn-style system
    println!("\ntokenizer comparison (AutoSklearn-style, 1h budget):");
    for mode in [
        TokenizerMode::Unstructured,
        TokenizerMode::AttributeBased,
        TokenizerMode::Hybrid,
    ] {
        let r = adapter_run(&dataset, &embedder, mode, Combiner::Average, 0, 1.0, seed);
        println!("  {:12} test F1 {:.2}", mode.label(), r.test_f1);
    }

    // system comparison with the hybrid tokenizer
    println!("\nAutoML system comparison (Hybrid tokenizer):");
    for (idx, name) in SYSTEM_NAMES.iter().enumerate() {
        let r = adapter_run(
            &dataset,
            &embedder,
            TokenizerMode::Hybrid,
            Combiner::Average,
            idx,
            1.0,
            seed,
        );
        println!(
            "  {name:12} test F1 {:.2}  ({:.2} paper-hours, {} models)",
            r.test_f1, r.hours_used, r.models_evaluated
        );
    }
    let _ = make_system(0, seed); // (exported for user code; silence lint)

    // DeepMatcher reference
    println!("\ntraining DeepMatcher (Hybrid) for reference…");
    let dm = train_deepmatcher(
        &dataset,
        TrainConfig {
            seed,
            ..TrainConfig::default()
        },
    );
    println!(
        "  DeepMatcher  test F1 {:.2}  (val {:.2})",
        dm.f1_on(dataset.split(Split::Test)),
        dm.val_f1
    );
}
