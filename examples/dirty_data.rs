//! Dirty-data robustness: the same source pair (iTunes-Amazon) in its
//! structured and dirty variants. The paper's Table 4 shows the hybrid
//! tokenizer is what keeps the adapter strong when attribute values sit in
//! the wrong columns — the attribute tokenizer couples misaligned values
//! and degrades.
//!
//! ```text
//! cargo run --release --example dirty_data
//! ```

use bench::experiments::adapter_run;
use em_core::{Combiner, TokenizerMode};
use em_data::MagellanDataset;
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};

fn main() {
    let seed = 11;
    let structured = MagellanDataset::SIA.profile().generate(seed);
    let dirty = MagellanDataset::DIA.profile().generate(seed);
    println!(
        "structured {} / dirty {} — {} pairs each\n",
        structured.name(),
        dirty.name(),
        structured.len()
    );
    // show what "dirty" means on an actual record
    let p = &dirty.pairs()[0];
    println!("a dirty record pair (values migrate across columns):");
    for (i, attr) in dirty.schema().attributes().iter().enumerate() {
        println!(
            "  {:12} | {:35} | {}",
            attr.name,
            p.left.value_or_empty(i),
            p.right.value_or_empty(i)
        );
    }

    let domain_text: Vec<String> = structured
        .pairs()
        .iter()
        .take(150)
        .flat_map(|pair| [pair.left.flatten(), pair.right.flatten()])
        .collect();
    println!("\npretraining the Albert-style embedder…");
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::Albert,
        &domain_text,
        PretrainConfig {
            seed,
            ..PretrainConfig::default()
        },
    );

    println!("\ntest F1 (AutoSklearn-style, 1h budget):");
    println!("{:>14} {:>12} {:>12}", "tokenizer", "structured", "dirty");
    for mode in [TokenizerMode::AttributeBased, TokenizerMode::Hybrid] {
        let s = adapter_run(
            &structured,
            &embedder,
            mode,
            Combiner::Average,
            0,
            1.0,
            seed,
        );
        let d = adapter_run(&dirty, &embedder, mode, Combiner::Average, 0, 1.0, seed);
        println!(
            "{:>14} {:>12.2} {:>12.2}",
            mode.label(),
            s.test_f1,
            d.test_f1
        );
    }
    println!("\n(the Hybrid row should degrade less from structured → dirty)");
}
