//! Using the pipeline on your own data: write a Magellan-layout CSV
//! (`label,left_<attr>…,right_<attr>…`), load it back, and run the adapted
//! AutoML pipeline — the workflow a downstream user follows with a real
//! labeled candidate set.
//!
//! ```text
//! cargo run --release --example custom_csv
//! ```

use automl::h2o_like::H2oStyle;
use em_core::{run_pipeline, Combiner, EmAdapter, PipelineConfig, TokenizerMode};
use em_data::csv::{read_csv, write_csv};
use em_data::{DatasetKind, MagellanDataset};
use embed::families::{EmbedderFamily, PretrainConfig, PretrainedTransformer};
use std::io::BufReader;

fn main() {
    // simulate "your own CSV" by exporting a generated dataset
    let source = MagellanDataset::SFZ.profile().generate(5);
    let mut buf = Vec::new();
    write_csv(&source, &mut buf).expect("serialize");
    println!(
        "wrote a {}-row CSV ({} bytes); first lines:",
        source.len(),
        buf.len()
    );
    for line in String::from_utf8_lossy(&buf).lines().take(3) {
        let shown: String = line.chars().take(100).collect();
        println!("  {shown}…");
    }

    // load it back: schema + attribute types are inferred from the header
    // and values, and a fresh 60/20/20 split is drawn
    let dataset = read_csv(
        "my-restaurants",
        DatasetKind::Structured,
        BufReader::new(&buf[..]),
        99,
    )
    .expect("parse CSV");
    println!(
        "\nloaded '{}': {} attributes, {} pairs, {:.1}% matches",
        dataset.name(),
        dataset.schema().len(),
        dataset.len(),
        dataset.match_ratio() * 100.0
    );

    let domain_text: Vec<String> = dataset
        .pairs()
        .iter()
        .take(100)
        .flat_map(|p| [p.left.flatten(), p.right.flatten()])
        .collect();
    println!("pretraining the DistilBert-style embedder (fast demo settings)…");
    let embedder = PretrainedTransformer::pretrain(
        EmbedderFamily::DBert,
        &domain_text,
        PretrainConfig {
            corpus_sentences: 800,
            steps: 300,
            seed: 5,
            ..PretrainConfig::default()
        },
    );

    let adapter = EmAdapter::new(TokenizerMode::Hybrid, &embedder, Combiner::Average);
    let mut system = H2oStyle::new(5);
    let result = run_pipeline(&mut system, &adapter, &dataset, PipelineConfig::default())
        .expect("pipeline run failed");
    println!(
        "\nH2O-style AutoML on the adapted features: test F1 {:.2} ({:.2} paper-hours)",
        result.test_f1, result.hours_used
    );
}
